package u256

import (
	"math/big"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

var two256 = new(big.Int).Lsh(big.NewInt(1), 256)

func randUint256(r *rand.Rand) Uint256 {
	return New(r.Uint64(), r.Uint64(), r.Uint64(), r.Uint64())
}

// Generate makes Uint256 usable with testing/quick, drawing uniformly
// random 256-bit values.
func (Uint256) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(randUint256(r))
}

func TestZeroOneMax(t *testing.T) {
	if !Zero.IsZero() {
		t.Error("Zero.IsZero() = false")
	}
	if One.Uint64() != 1 || !One.IsUint64() {
		t.Errorf("One = %v", One)
	}
	if Max.OnesCount() != 256 {
		t.Errorf("Max.OnesCount() = %d, want 256", Max.OnesCount())
	}
	if got := Max.Add(One); !got.IsZero() {
		t.Errorf("Max+1 = %v, want 0", got)
	}
}

func TestAddSubAgainstBig(t *testing.T) {
	f := func(x, y Uint256) bool {
		sum := x.Add(y)
		want := new(big.Int).Add(x.ToBig(), y.ToBig())
		want.Mod(want, two256)
		if sum.ToBig().Cmp(want) != 0 {
			return false
		}
		diff := x.Sub(y)
		want = new(big.Int).Sub(x.ToBig(), y.ToBig())
		want.Mod(want, two256)
		return diff.ToBig().Cmp(want) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNegIsTwosComplement(t *testing.T) {
	f := func(x Uint256) bool {
		// -x == ^x + 1 and x + (-x) == 0.
		if !x.Neg().Equal(x.Not().Add(One)) {
			return false
		}
		return x.Add(x.Neg()).IsZero()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitwiseAgainstBig(t *testing.T) {
	f := func(x, y Uint256) bool {
		if x.And(y).ToBig().Cmp(new(big.Int).And(x.ToBig(), y.ToBig())) != 0 {
			return false
		}
		if x.Or(y).ToBig().Cmp(new(big.Int).Or(x.ToBig(), y.ToBig())) != 0 {
			return false
		}
		if x.Xor(y).ToBig().Cmp(new(big.Int).Xor(x.ToBig(), y.ToBig())) != 0 {
			return false
		}
		notWant := new(big.Int).Sub(two256, big.NewInt(1))
		notWant.Xor(notWant, x.ToBig())
		return x.Not().ToBig().Cmp(notWant) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShiftsAgainstBig(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		x := randUint256(r)
		n := uint(r.Intn(300)) // deliberately include shifts >= 256
		wantL := new(big.Int).Lsh(x.ToBig(), n)
		wantL.Mod(wantL, two256)
		if got := x.Shl(n); got.ToBig().Cmp(wantL) != 0 {
			t.Fatalf("Shl(%v, %d) = %v, want %v", x, n, got, wantL)
		}
		wantR := new(big.Int).Rsh(x.ToBig(), n)
		if got := x.Shr(n); got.ToBig().Cmp(wantR) != 0 {
			t.Fatalf("Shr(%v, %d) = %v, want %v", x, n, got, wantR)
		}
	}
}

func TestRotateLeft(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		x := randUint256(r)
		n := r.Intn(512) - 256
		got := x.RotateLeft(n)
		if got.OnesCount() != x.OnesCount() {
			t.Fatalf("RotateLeft changed popcount: %v -> %v", x, got)
		}
		// Rotating back must restore the original value.
		if !got.RotateLeft(-n).Equal(x) {
			t.Fatalf("RotateLeft(%d) not invertible for %v", n, x)
		}
	}
	if !One.RotateLeft(255).Equal(New(0, 0, 0, 1<<63)) {
		t.Error("RotateLeft(1, 255) wrong")
	}
	if !New(0, 0, 0, 1<<63).RotateLeft(1).Equal(One) {
		t.Error("RotateLeft wraparound wrong")
	}
}

func TestBitOps(t *testing.T) {
	x := Zero
	for _, i := range []int{0, 1, 63, 64, 127, 128, 200, 255} {
		x = x.SetBit(i, 1)
		if x.Bit(i) != 1 {
			t.Errorf("bit %d not set", i)
		}
	}
	if x.OnesCount() != 8 {
		t.Errorf("OnesCount = %d, want 8", x.OnesCount())
	}
	for _, i := range []int{0, 255} {
		x = x.FlipBit(i)
		if x.Bit(i) != 0 {
			t.Errorf("bit %d not cleared by flip", i)
		}
	}
	x = x.SetBit(100, 1).SetBit(100, 0)
	if x.Bit(100) != 0 {
		t.Error("SetBit(100, 0) did not clear")
	}
}

func TestBitPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Zero.Bit(-1) },
		func() { Zero.Bit(256) },
		func() { Zero.SetBit(256, 1) },
		func() { Zero.SetBit(0, 2) },
		func() { Zero.FlipBit(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestCountsAgainstBig(t *testing.T) {
	f := func(x Uint256) bool {
		b := x.ToBig()
		if x.BitLen() != b.BitLen() {
			return false
		}
		pop := 0
		for i := 0; i < b.BitLen(); i++ {
			pop += int(b.Bit(i))
		}
		if x.OnesCount() != pop {
			return false
		}
		tz := 256
		for i := 0; i < 256; i++ {
			if b.Bit(i) == 1 {
				tz = i
				break
			}
		}
		return x.TrailingZeros() == tz && x.LeadingZeros() == 256-b.BitLen()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCmp(t *testing.T) {
	f := func(x, y Uint256) bool {
		return x.Cmp(y) == x.ToBig().Cmp(y.ToBig()) &&
			x.Equal(y) == (x.Cmp(y) == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBytesRoundTrip(t *testing.T) {
	f := func(x Uint256) bool {
		return FromBytes(x.Bytes()).Equal(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromByteSlice(t *testing.T) {
	got, err := FromByteSlice([]byte{0x01, 0x02})
	if err != nil {
		t.Fatal(err)
	}
	if got.Uint64() != 0x0102 {
		t.Errorf("FromByteSlice short = %v", got)
	}
	if _, err := FromByteSlice(make([]byte, 33)); err == nil {
		t.Error("expected error for 33-byte slice")
	}
}

func TestBigRoundTrip(t *testing.T) {
	f := func(x Uint256) bool {
		y, err := FromBig(x.ToBig())
		return err == nil && y.Equal(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if _, err := FromBig(big.NewInt(-1)); err == nil {
		t.Error("expected error for negative")
	}
	if _, err := FromBig(two256); err == nil {
		t.Error("expected error for 2^256")
	}
}

func TestHexRoundTrip(t *testing.T) {
	f := func(x Uint256) bool {
		y, err := FromHex(x.String())
		return err == nil && y.Equal(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	for _, bad := range []string{"", "0x", "zz", "0x" + string(make([]byte, 65))} {
		if _, err := FromHex(bad); err == nil {
			t.Errorf("FromHex(%q): expected error", bad)
		}
	}
	got, err := FromHex("0xFF")
	if err != nil || got.Uint64() != 255 {
		t.Errorf("FromHex(0xFF) = %v, %v", got, err)
	}
}

func TestHammingDistance(t *testing.T) {
	f := func(x, y Uint256) bool {
		d := x.HammingDistance(y)
		return d == y.HammingDistance(x) && d == x.Xor(y).OnesCount() &&
			x.HammingDistance(x) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// gosperStep performs one Gosper's hack iteration; used here to verify that
// the primitive operations compose correctly at 256 bits before iterseq
// builds on them.
func gosperStep(x Uint256) Uint256 {
	u := x.And(x.Neg())  // lowest set bit
	v := x.Add(u)        // ripple the carry
	w := v.Xor(x).Shr(2) // ones to move to the bottom, pre-division
	return v.Or(w.Shr(uint(u.TrailingZeros())))
}

func TestGosperStepPreservesPopcount(t *testing.T) {
	x := New(0b111, 0, 0, 0)
	seen := map[Uint256]bool{}
	for i := 0; i < 1000; i++ {
		if x.OnesCount() != 3 {
			t.Fatalf("popcount drifted to %d at step %d", x.OnesCount(), i)
		}
		if seen[x] {
			t.Fatalf("combination repeated at step %d", i)
		}
		seen[x] = true
		x = gosperStep(x)
	}
}
