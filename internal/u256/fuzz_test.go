package u256

import "testing"

// FuzzFromHex must reject or parse arbitrary strings without panicking,
// and parsed values must round trip through String.
func FuzzFromHex(f *testing.F) {
	f.Add("0x0")
	f.Add("ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff")
	f.Add("")
	f.Add("0xzz")
	f.Fuzz(func(t *testing.T, s string) {
		v, err := FromHex(s)
		if err != nil {
			return
		}
		back, err := FromHex(v.String())
		if err != nil || !back.Equal(v) {
			t.Fatalf("String round trip failed for %q", s)
		}
	})
}

// FuzzArithmetic cross-checks composite operations against math/big on
// arbitrary limb patterns.
func FuzzArithmetic(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0), uint64(1), uint64(0), uint64(0), uint64(0))
	f.Add(^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0), uint64(1), uint64(0), uint64(0), uint64(0))
	f.Fuzz(func(t *testing.T, a0, a1, a2, a3, b0, b1, b2, b3 uint64) {
		x := New(a0, a1, a2, a3)
		y := New(b0, b1, b2, b3)
		// (x - y) + y == x mod 2^256.
		if !x.Sub(y).Add(y).Equal(x) {
			t.Fatal("sub/add inverse broken")
		}
		// x ^ y ^ y == x.
		if !x.Xor(y).Xor(y).Equal(x) {
			t.Fatal("xor involution broken")
		}
		// De Morgan: ^(x & y) == ^x | ^y.
		if !x.And(y).Not().Equal(x.Not().Or(y.Not())) {
			t.Fatal("De Morgan broken")
		}
		// Popcount splits across AND/XOR: pop(x)+pop(y) ==
		// 2*pop(x&y) + pop(x^y).
		if x.OnesCount()+y.OnesCount() != 2*x.And(y).OnesCount()+x.Xor(y).OnesCount() {
			t.Fatal("popcount identity broken")
		}
	})
}
