package iterseq

import (
	"math/bits"

	"rbcsalted/internal/combin"
	"rbcsalted/internal/u256"
)

// gosperIter enumerates k-bit masks in increasing numeric order using
// Gosper's hack on 256-bit arithmetic. This is the iterator prior RBC work
// used; at 256 bits every step pays for multi-limb negation, addition,
// variable shift and division-by-power-of-two, which is exactly the
// overhead the paper measures against.
type gosperIter struct {
	n, k      int
	mask      u256.Uint256
	remaining int64
	scratch   []int
}

func newGosper(n, k int, startRank uint64, count int64) (*gosperIter, error) {
	it := &gosperIter{n: n, k: k, remaining: count, scratch: make([]int, k)}
	if count == 0 {
		return it, nil
	}
	// Gosper order == colex order, so the start mask comes from a colex
	// unrank. This is how the parallel search jumps each thread to its
	// own disjoint subrange.
	if err := combin.UnrankColex(n, startRank, it.scratch); err != nil {
		return nil, err
	}
	it.mask = u256.Zero
	for _, pos := range it.scratch {
		it.mask = it.mask.SetBit(pos, 1)
	}
	return it, nil
}

func (it *gosperIter) Next(c []int) bool {
	if it.remaining <= 0 {
		return false
	}
	it.remaining--
	maskToCombination(it.mask, c)
	if it.remaining > 0 {
		it.mask = gosperNext(it.mask)
	}
	return true
}

// NextMask implements MaskIter. The Gosper iterator's state *is* the
// mask, so this path skips the per-seed bit-scan that Next pays to
// extract positions - the fastest form of the method prior RBC work used.
func (it *gosperIter) NextMask(mask *u256.Uint256) bool {
	if it.remaining <= 0 {
		return false
	}
	it.remaining--
	*mask = it.mask
	if it.remaining > 0 {
		it.mask = gosperNext(it.mask)
	}
	return true
}

// gosperNext computes the next-higher integer with the same popcount:
//
//	u = x & -x
//	v = x + u
//	next = v | (((v ^ x) / u) >> 2)
//
// It works on raw limbs rather than u256 value operations: u is a
// single bit (the lowest set bit), so the negate-and-mask collapses to a
// trailing-zeros scan, the division by u plus the >>2 collapse to one
// funnel shift by tz+2, and everything is branchless - this step runs
// once per candidate in the batched host fill loop.
func gosperNext(x u256.Uint256) u256.Uint256 {
	x0, x1, x2, x3 := x.Limb(0), x.Limb(1), x.Limb(2), x.Limb(3)

	// tz = index of the lowest set bit; u = 1 << tz.
	var tz uint
	switch {
	case x0 != 0:
		tz = uint(bits.TrailingZeros64(x0))
	case x1 != 0:
		tz = 64 + uint(bits.TrailingZeros64(x1))
	case x2 != 0:
		tz = 128 + uint(bits.TrailingZeros64(x2))
	default:
		tz = 192 + uint(bits.TrailingZeros64(x3))
	}

	// v = x + u, one add with carry per limb.
	var u [4]uint64
	u[tz>>6] = 1 << (tz & 63)
	v0, c := bits.Add64(x0, u[0], 0)
	v1, c := bits.Add64(x1, u[1], c)
	v2, c := bits.Add64(x2, u[2], c)
	v3, _ := bits.Add64(x3, u[3], c)

	// w = (v ^ x) >> (tz + 2), as a branchless funnel shift: Go defines
	// shifts of 64 or more as zero, so the cross-limb term vanishes on
	// its own when the bit shift is zero, and reading past the top limbs
	// of the padded array yields the zeros a 256-bit shift-out needs.
	var t [9]uint64
	t[0], t[1], t[2], t[3] = v0^x0, v1^x1, v2^x2, v3^x3
	s := tz + 2
	ls, bs := s>>6, s&63
	w0 := t[ls]>>bs | t[ls+1]<<(64-bs)
	w1 := t[ls+1]>>bs | t[ls+2]<<(64-bs)
	w2 := t[ls+2]>>bs | t[ls+3]<<(64-bs)
	w3 := t[ls+3]>>bs | t[ls+4]<<(64-bs)

	return u256.New(v0|w0, v1|w1, v2|w2, v3|w3)
}

// maskToCombination extracts the set bit positions of mask in ascending
// order into c.
func maskToCombination(mask u256.Uint256, c []int) {
	idx := 0
	for idx < len(c) {
		tz := mask.TrailingZeros()
		c[idx] = tz
		idx++
		mask = mask.SetBit(tz, 0)
	}
}
