package iterseq

import (
	"rbcsalted/internal/combin"
	"rbcsalted/internal/u256"
)

// gosperIter enumerates k-bit masks in increasing numeric order using
// Gosper's hack on 256-bit arithmetic. This is the iterator prior RBC work
// used; at 256 bits every step pays for multi-limb negation, addition,
// variable shift and division-by-power-of-two, which is exactly the
// overhead the paper measures against.
type gosperIter struct {
	n, k      int
	mask      u256.Uint256
	remaining int64
	scratch   []int
}

func newGosper(n, k int, startRank uint64, count int64) (*gosperIter, error) {
	it := &gosperIter{n: n, k: k, remaining: count, scratch: make([]int, k)}
	if count == 0 {
		return it, nil
	}
	// Gosper order == colex order, so the start mask comes from a colex
	// unrank. This is how the parallel search jumps each thread to its
	// own disjoint subrange.
	if err := combin.UnrankColex(n, startRank, it.scratch); err != nil {
		return nil, err
	}
	it.mask = u256.Zero
	for _, pos := range it.scratch {
		it.mask = it.mask.SetBit(pos, 1)
	}
	return it, nil
}

func (it *gosperIter) Next(c []int) bool {
	if it.remaining <= 0 {
		return false
	}
	it.remaining--
	maskToCombination(it.mask, c)
	if it.remaining > 0 {
		it.mask = gosperNext(it.mask)
	}
	return true
}

// NextMask implements MaskIter. The Gosper iterator's state *is* the
// mask, so this path skips the per-seed bit-scan that Next pays to
// extract positions - the fastest form of the method prior RBC work used.
func (it *gosperIter) NextMask(mask *u256.Uint256) bool {
	if it.remaining <= 0 {
		return false
	}
	it.remaining--
	*mask = it.mask
	if it.remaining > 0 {
		it.mask = gosperNext(it.mask)
	}
	return true
}

// gosperNext computes the next-higher integer with the same popcount:
//
//	u = x & -x
//	v = x + u
//	next = v | (((v ^ x) / u) >> 2)
func gosperNext(x u256.Uint256) u256.Uint256 {
	u := x.And(x.Neg())
	v := x.Add(u)
	w := v.Xor(x).Shr(uint(u.TrailingZeros())).Shr(2)
	return v.Or(w)
}

// maskToCombination extracts the set bit positions of mask in ascending
// order into c.
func maskToCombination(mask u256.Uint256, c []int) {
	idx := 0
	for idx < len(c) {
		tz := mask.TrailingZeros()
		c[idx] = tz
		idx++
		mask = mask.SetBit(tz, 0)
	}
}
