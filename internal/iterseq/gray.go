package iterseq

import (
	"fmt"

	"rbcsalted/internal/combin"
	"rbcsalted/internal/u256"
)

// grayIter enumerates k-combinations in revolving-door Gray-code order:
// successive combinations differ by exactly one element removed and one
// added (two seed bits flipped). This fills the paper's "Chase Algorithm
// 382" slot: a non-recursive minimal-change sequence with tiny per-thread
// state. Unlike Chase's formulation, the revolving-door order has a cheap
// exact ranking, so parallel threads seek directly to their subrange
// instead of loading checkpoint states precomputed by a full enumeration
// (the paper's approach, which it excludes from timing; EnumerateStates
// reproduces it for comparison).
//
// The order R(m, j) over {0..m-1} is defined by the classic recursion
// R(m, j) = R(m-1, j) ++ reverse(R(m-1, j-1)) x {m-1}, with
// first(R(m, j)) = {0..j-1} and last(R(m, j)) = {0..j-2, m-1}.
type grayIter struct {
	n, k      int
	cur       []int
	prev      []int // scratch for the mask delta
	mask      u256.Uint256
	maskStale bool // cur advanced without mask upkeep; rebuild on demand
	remaining int64
}

func newGray(n, k int, startRank uint64, count int64) (*grayIter, error) {
	it := &grayIter{n: n, k: k, cur: make([]int, k), prev: make([]int, k), remaining: count}
	if count == 0 {
		return it, nil
	}
	if err := GrayUnrank(n, startRank, it.cur); err != nil {
		return nil, err
	}
	if n <= 256 {
		it.mask = maskOf(it.cur)
	}
	return it, nil
}

// advance steps cur to its revolving-door successor, keeping the flip
// mask in sync by XORing only the slots the successor changed. A
// revolving-door step swaps one element for another, so this is
// typically two bit flips regardless of k. The flips accumulate in a
// local delta applied with one Xor: this runs once per candidate in the
// batched host fill loop, where chained by-value FlipBit calls (a
// 32-byte copy in and out each) showed up in profiles.
func (it *grayIter) advance() {
	copy(it.prev, it.cur)
	if !graySuccessor(it.n, it.cur) {
		// The range length was validated at construction, so running
		// off the sequence is a bug, not an input error.
		panic("iterseq: gray successor exhausted before range end")
	}
	if it.n <= 256 {
		var delta [4]uint64
		for i, p := range it.prev {
			if q := it.cur[i]; p != q {
				delta[uint(p)>>6] ^= 1 << (uint(p) & 63)
				delta[uint(q)>>6] ^= 1 << (uint(q) & 63)
			}
		}
		it.mask = it.mask.Xor(u256.New(delta[0], delta[1], delta[2], delta[3]))
	}
}

// Next deliberately skips the mask upkeep: position-list callers (and
// the host-cost calibration that prices this method for the simulators)
// must pay exactly the successor cost, nothing more. The mask is marked
// stale and rebuilt only if the caller later switches to NextMask.
func (it *grayIter) Next(c []int) bool {
	if it.remaining <= 0 {
		return false
	}
	it.remaining--
	copy(c, it.cur)
	if it.remaining > 0 {
		if !graySuccessor(it.n, it.cur) {
			// The range length was validated at construction, so running
			// off the sequence is a bug, not an input error.
			panic("iterseq: gray successor exhausted before range end")
		}
		it.maskStale = true
	}
	return true
}

// NextMask implements MaskIter via the incrementally maintained mask.
func (it *grayIter) NextMask(mask *u256.Uint256) bool {
	if it.remaining <= 0 {
		return false
	}
	if it.maskStale {
		it.mask = maskOf(it.cur)
		it.maskStale = false
	}
	it.remaining--
	*mask = it.mask
	if it.remaining > 0 {
		it.advance()
	}
	return true
}

// GrayRank returns the 0-based rank of combination c (strictly increasing
// positions in [0, n)) in revolving-door order. Each selected maximum
// element flips the orientation of the remaining subsequence, hence the
// alternating sign.
func GrayRank(n int, c []int) (uint64, error) {
	if len(c) > 0 && (c[len(c)-1] >= n || c[0] < 0) {
		return 0, fmt.Errorf("iterseq: combination %v out of range [0,%d)", c, n)
	}
	acc := int64(0)
	sign := int64(1)
	for j := len(c); j > 0; j-- {
		top := c[j-1]
		cj, ok1 := combin.Binomial64(top, j)
		cj1, ok2 := combin.Binomial64(top, j-1)
		if !ok1 || !ok2 {
			return 0, fmt.Errorf("iterseq: gray rank overflows uint64")
		}
		acc += sign * (int64(cj) + int64(cj1) - 1)
		sign = -sign
	}
	if acc < 0 {
		return 0, fmt.Errorf("iterseq: invalid combination %v", c)
	}
	return uint64(acc), nil
}

// GrayUnrank writes into c the combination at the given rank in
// revolving-door order over k-subsets of [0, n), k = len(c).
func GrayUnrank(n int, rank uint64, c []int) error {
	k := len(c)
	total, ok := combin.Binomial64(n, k)
	if !ok {
		return fmt.Errorf("iterseq: C(%d,%d) overflows uint64", n, k)
	}
	if rank >= total {
		return fmt.Errorf("iterseq: rank %d out of range [0,%d)", rank, total)
	}
	r := rank
	j := k
	for m := n; j > 0; m-- {
		cm1j, _ := combin.Binomial64(m-1, j)
		if r >= cm1j {
			cm1j1, _ := combin.Binomial64(m-1, j-1)
			c[j-1] = m - 1
			// Entering the reversed second part: re-express r in the
			// forward orientation of R(m-1, j-1).
			r = cm1j + cm1j1 - 1 - r
			j--
		}
	}
	return nil
}

// graySuccessor advances c to the next combination in revolving-door
// order over [0, n), in place. It returns false if c is the last
// combination. The walk descends the defining recursion iteratively,
// alternating direction whenever it enters a reversed second part; the
// two boundary cases produce the answer directly from the closed forms of
// first() and last().
func graySuccessor(n int, c []int) bool {
	j := len(c)
	if j == 0 {
		return false
	}
	m := n
	forward := true
	for {
		if j == 0 {
			// Asked to move within R(m, 0) = [empty set]: no neighbours.
			return false
		}
		top := c[j-1]
		if forward {
			if top == m-1 {
				// Second part, forward = backward within R(m-1, j-1).
				forward = false
				m--
				j--
				continue
			}
			// First part. The only boundary is last(R(m-1,j)) =
			// {0..j-2, m-2}, so jump straight to m = top+2.
			m = top + 2
			if prefixConsecutive(c, j-1) {
				// Cross into the second part:
				// {0..j-2, m-2} -> {0..j-3, m-2, m-1}.
				if j >= 2 {
					c[j-2] = m - 2
				}
				c[j-1] = m - 1
				return true
			}
			// Not at the boundary; the next level down is the second part.
			m--
		} else {
			if top == m-1 {
				if j == m {
					// c is the sole element of R(m, m): no predecessor,
					// which means the enclosing sequence is exhausted.
					return false
				}
				// Second part, backward: the element visited before
				// c' + {m-1} is either within the reversed part (next of
				// c' in R(m-1, j-1)) or, at the part boundary
				// c' == last(R(m-1, j-1)) = {0..j-3, m-2}, the final
				// element of the first part, last(R(m-1,j)) = {0..j-2, m-2}.
				atBoundary := j == 1 || (c[j-2] == m-2 && prefixConsecutive(c, j-2))
				if atBoundary {
					for i := 0; i < j-1; i++ {
						c[i] = i
					}
					c[j-1] = m - 2
					return true
				}
				forward = true
				m--
				j--
				continue
			}
			// First part, backward: predecessor within R(m-1, j) unless c
			// is first(R(m, j)) = {0..j-1}, the global start.
			if prefixConsecutive(c, j) {
				return false
			}
			m = top + 1
		}
	}
}

// prefixConsecutive reports whether c[0..upto-1] == {0, 1, ..., upto-1}.
func prefixConsecutive(c []int, upto int) bool {
	for i := 0; i < upto; i++ {
		if c[i] != i {
			return false
		}
	}
	return true
}

// EnumerateStates reproduces the paper's checkpointing strategy for
// sequential iterators: walk the full Gray sequence once and record the
// combination at the start of each of parts equal shares. The paper
// performs this offline and excludes it from timing; with GrayUnrank
// available it exists mainly to cross-validate the ranking.
func EnumerateStates(n, k, parts int) ([][]int, error) {
	ranges, err := Partition(n, k, parts)
	if err != nil {
		return nil, err
	}
	out := make([][]int, 0, parts)
	cur := make([]int, k)
	for i := range cur {
		cur[i] = i
	}
	next := 0
	for rank := uint64(0); next < len(ranges); rank++ {
		for next < len(ranges) && ranges[next].Start == rank {
			if ranges[next].Count > 0 {
				out = append(out, append([]int(nil), cur...))
			} else {
				out = append(out, nil) // more parts than combinations
			}
			next++
		}
		if next == len(ranges) || !graySuccessor(n, cur) {
			break
		}
	}
	for len(out) < parts {
		out = append(out, nil)
	}
	return out, nil
}
