package iterseq

import "rbcsalted/internal/combin"

// mifsudIter is the lexicographic-successor iterator in the style of ACM
// Algorithm 154 (Mifsud, 1963): find the rightmost position that can
// advance, increment it, and reset the tail to the minimal run. This is
// the historical baseline the paper's related work begins from; the
// transition is amortized O(1) but can touch up to k positions.
type mifsudIter struct {
	n, k      int
	cur       []int
	remaining int64
}

func newMifsud(n, k int, startRank uint64, count int64) (*mifsudIter, error) {
	it := &mifsudIter{n: n, k: k, cur: make([]int, k), remaining: count}
	if count == 0 {
		return it, nil
	}
	if err := combin.UnrankLex(n, startRank, it.cur); err != nil {
		return nil, err
	}
	return it, nil
}

func (it *mifsudIter) Next(c []int) bool {
	if it.remaining <= 0 {
		return false
	}
	it.remaining--
	copy(c, it.cur)
	if it.remaining > 0 {
		it.advance()
	}
	return true
}

func (it *mifsudIter) advance() {
	k := it.k
	// Rightmost position that can move up: cur[i] < limit(i).
	for i := k - 1; i >= 0; i-- {
		limit := it.n - (k - i) // highest value position i may take
		if it.cur[i] < limit {
			it.cur[i]++
			for j := i + 1; j < k; j++ {
				it.cur[j] = it.cur[j-1] + 1
			}
			return
		}
	}
}
