package iterseq

import (
	"rbcsalted/internal/combin"
	"rbcsalted/internal/u256"
)

// mifsudIter is the lexicographic-successor iterator in the style of ACM
// Algorithm 154 (Mifsud, 1963): find the rightmost position that can
// advance, increment it, and reset the tail to the minimal run. This is
// the historical baseline the paper's related work begins from; the
// transition is amortized O(1) but can touch up to k positions.
type mifsudIter struct {
	n, k      int
	cur       []int
	mask      u256.Uint256
	maskStale bool // cur advanced without mask upkeep; rebuild on demand
	remaining int64
}

func newMifsud(n, k int, startRank uint64, count int64) (*mifsudIter, error) {
	it := &mifsudIter{n: n, k: k, cur: make([]int, k), remaining: count}
	if count == 0 {
		return it, nil
	}
	if err := combin.UnrankLex(n, startRank, it.cur); err != nil {
		return nil, err
	}
	if n <= 256 {
		it.mask = maskOf(it.cur)
	}
	return it, nil
}

// Next deliberately leaves the mask stale: position-list callers (and
// the host-cost calibration that prices this method for the simulators)
// must pay exactly the successor cost; the mask is rebuilt on demand if
// the caller later switches to NextMask.
func (it *mifsudIter) Next(c []int) bool {
	if it.remaining <= 0 {
		return false
	}
	it.remaining--
	copy(c, it.cur)
	if it.remaining > 0 {
		it.advance(false)
		it.maskStale = true
	}
	return true
}

// NextMask implements MaskIter. The mask follows the successor's delta:
// the flips mirror exactly the positions advance rewrites, so the
// amortized-O(1) transition carries over to the mask form.
func (it *mifsudIter) NextMask(mask *u256.Uint256) bool {
	if it.remaining <= 0 {
		return false
	}
	if it.maskStale {
		it.mask = maskOf(it.cur)
		it.maskStale = false
	}
	it.remaining--
	*mask = it.mask
	if it.remaining > 0 {
		it.advance(it.n <= 256)
	}
	return true
}

func (it *mifsudIter) advance(trackMask bool) {
	k := it.k
	// Rightmost position that can move up: cur[i] < limit(i).
	for i := k - 1; i >= 0; i-- {
		limit := it.n - (k - i) // highest value position i may take
		if it.cur[i] < limit {
			if trackMask {
				// Accumulate every flip in a local delta and apply it
				// with one Xor: this runs once per candidate in the
				// batched host fill loop, where chained by-value FlipBit
				// calls (a 32-byte copy in and out each) showed up in
				// profiles.
				var delta [4]uint64
				p := it.cur[i]
				delta[uint(p)>>6] ^= 1 << (uint(p) & 63)
				it.cur[i]++
				p = it.cur[i]
				delta[uint(p)>>6] ^= 1 << (uint(p) & 63)
				for j := i + 1; j < k; j++ {
					if q := it.cur[j]; q != it.cur[j-1]+1 {
						p = it.cur[j-1] + 1
						delta[uint(q)>>6] ^= 1 << (uint(q) & 63)
						delta[uint(p)>>6] ^= 1 << (uint(p) & 63)
					}
					it.cur[j] = it.cur[j-1] + 1
				}
				it.mask = it.mask.Xor(u256.New(delta[0], delta[1], delta[2], delta[3]))
			} else {
				it.cur[i]++
				for j := i + 1; j < k; j++ {
					it.cur[j] = it.cur[j-1] + 1
				}
			}
			return
		}
	}
}
