package iterseq

import (
	"testing"

	"rbcsalted/internal/u256"
)

// BenchmarkFillSeeds prices each iteration method's candidate-mask fill
// over the d=2 shell, in isolation from hashing: this is the per-seed
// cost the batched host search pays before the batch kernel sees the
// candidates, and the floor it imposes on end-to-end throughput. The
// alg515 row is why the wide SHA-3 kernel cannot reach its batch-bound
// throughput on that iterator - the fill alone costs several kernel
// compressions per batch.
func BenchmarkFillSeeds(b *testing.B) {
	base := u256.New(0xfeedbeef, 0x12345678, 0x9abcdef0, 0x0f1e2d3c)
	for _, m := range Methods() {
		b.Run(m.String(), func(b *testing.B) {
			var dst [256]u256.Uint256
			var scratch u256.Uint256
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				it, err := New(m, 256, 2, 0, 32640)
				if err != nil {
					b.Fatal(err)
				}
				mi := it.(MaskIter)
				for {
					if FillSeeds(mi, base, &scratch, dst[:]) < len(dst) {
						break
					}
				}
			}
		})
	}
}
