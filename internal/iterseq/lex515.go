package iterseq

import (
	"sync"

	"rbcsalted/internal/combin"
	"rbcsalted/internal/u256"
)

// lex515Iter implements ACM Algorithm 515 (Buckles-Lybanon): every
// combination is generated independently from its lexicographic index via
// a binomial-coefficient lookup table. There is no carried state between
// combinations, which is why the method parallelizes perfectly - and why
// it does the most work per seed, re-deriving each combination from
// scratch.
type lex515Iter struct {
	n, k      int
	rank      uint64
	remaining int64
	table     *binomTable
	scratch   []int // combination buffer for the mask form
}

func newLex515(n, k int, startRank uint64, count int64) (*lex515Iter, error) {
	return &lex515Iter{
		n:         n,
		k:         k,
		rank:      startRank,
		remaining: count,
		table:     binomTableFor(n, k),
		scratch:   make([]int, k),
	}, nil
}

func (it *lex515Iter) Next(c []int) bool {
	if it.remaining <= 0 {
		return false
	}
	it.remaining--
	it.table.unrankLex(it.rank, c)
	it.rank++
	return true
}

// NextMask implements MaskIter. Algorithm 515 has no carried state, so
// unlike the minimal-change iterators the mask is rebuilt from the rank
// every step - the method keeps its random-access work profile in mask
// form too.
func (it *lex515Iter) NextMask(mask *u256.Uint256) bool {
	if it.remaining <= 0 {
		return false
	}
	it.remaining--
	it.table.unrankLex(it.rank, it.scratch)
	it.rank++
	*mask = maskOf(it.scratch)
	return true
}

// binomTable is the precomputed C(n', k') lookup shared by all Algorithm
// 515 iterators for a given (n, k) - the paper's "lookup table exploiting
// high memory bandwidth". It is immutable after construction.
type binomTable struct {
	n, k int
	// c[i][j] = C(i, j) for i <= n, j <= k.
	c [][]uint64
}

var (
	tablesMu    sync.Mutex
	binomTables = map[[2]int]*binomTable{}
)

func binomTableFor(n, k int) *binomTable {
	// The table is tiny (n*k uint64s); build eagerly, cache per shape.
	key := [2]int{n, k}
	tablesMu.Lock()
	defer tablesMu.Unlock()
	if t, ok := binomTables[key]; ok {
		return t
	}
	t := &binomTable{n: n, k: k, c: make([][]uint64, n+1)}
	for i := 0; i <= n; i++ {
		t.c[i] = make([]uint64, k+1)
		t.c[i][0] = 1
		for j := 1; j <= k && j <= i; j++ {
			v, ok := combin.Binomial64(i, j)
			if !ok {
				v = ^uint64(0) // saturate; unreachable for k <= 10, n = 256
			}
			t.c[i][j] = v
		}
	}
	binomTables[key] = t
	return t
}

// unrankLex writes the combination at the given lexicographic rank into c.
// This is the Algorithm 515 inner loop: scan positions left to right,
// subtracting block sizes C(n-1-pos, k-1-i) until the rank falls inside
// the current block.
func (t *binomTable) unrankLex(rank uint64, c []int) {
	pos := 0
	k := len(c)
	for i := 0; i < k; i++ {
		for {
			remaining := t.n - 1 - pos
			need := k - 1 - i
			var v uint64
			if remaining >= need {
				v = t.c[remaining][need]
			}
			if rank < v {
				break
			}
			rank -= v
			pos++
		}
		c[i] = pos
		pos++
	}
}
