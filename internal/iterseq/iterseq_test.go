package iterseq

import (
	"fmt"
	"testing"

	"rbcsalted/internal/combin"
	"rbcsalted/internal/u256"
)

// collect drains an iterator into a list of combination keys.
func collect(t *testing.T, it Iter, k int) []string {
	t.Helper()
	var out []string
	c := make([]int, k)
	for it.Next(c) {
		prev := -1
		for _, v := range c {
			if v <= prev {
				t.Fatalf("combination %v not strictly increasing", c)
			}
			prev = v
		}
		out = append(out, fmt.Sprint(c))
	}
	return out
}

// TestAllMethodsEnumerateExactly verifies, for every method and a sweep of
// small (n, k), that the full sequence visits every k-subset exactly once.
func TestAllMethodsEnumerateExactly(t *testing.T) {
	for _, method := range Methods() {
		for n := 1; n <= 10; n++ {
			for k := 1; k <= n; k++ {
				it, err := New(method, n, k, 0, -1)
				if err != nil {
					t.Fatalf("%v n=%d k=%d: %v", method, n, k, err)
				}
				seen := map[string]bool{}
				for _, key := range collect(t, it, k) {
					if seen[key] {
						t.Fatalf("%v n=%d k=%d: repeated %s", method, n, k, key)
					}
					seen[key] = true
				}
				total, _ := combin.Binomial64(n, k)
				if uint64(len(seen)) != total {
					t.Fatalf("%v n=%d k=%d: %d combinations, want %d",
						method, n, k, len(seen), total)
				}
			}
		}
	}
}

// TestPartitionedRangesCoverSequence verifies the property the parallel
// search depends on: splitting [0, C(n,k)) into ranges and running one
// iterator per range reproduces the full sequence in order.
func TestPartitionedRangesCoverSequence(t *testing.T) {
	n, k, parts := 12, 4, 7
	for _, method := range Methods() {
		whole, err := New(method, n, k, 0, -1)
		if err != nil {
			t.Fatal(err)
		}
		want := collect(t, whole, k)

		ranges, err := Partition(n, k, parts)
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		for _, r := range ranges {
			it, err := New(method, n, k, r.Start, int64(r.Count))
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, collect(t, it, k)...)
		}
		if len(got) != len(want) {
			t.Fatalf("%v: partitioned total %d, want %d", method, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%v: position %d: %s != %s", method, i, got[i], want[i])
			}
		}
	}
}

// TestGrayMinimalChange verifies the revolving-door property: successive
// combinations differ by exactly one element out and one element in
// (Hamming distance 2 between masks).
func TestGrayMinimalChange(t *testing.T) {
	for n := 2; n <= 11; n++ {
		for k := 1; k < n; k++ {
			it, _ := New(GrayCode, n, k, 0, -1)
			c := make([]int, k)
			var prev u256.Uint256
			first := true
			for it.Next(c) {
				mask := ApplySeed(u256.Zero, c)
				if !first {
					if d := mask.HammingDistance(prev); d != 2 {
						t.Fatalf("n=%d k=%d: step changed %d bits, want 2", n, k, d)
					}
				}
				first = false
				prev = mask
			}
		}
	}
}

func TestGrayRankUnrankRoundTrip(t *testing.T) {
	for n := 1; n <= 10; n++ {
		for k := 1; k <= n; k++ {
			total, _ := combin.Binomial64(n, k)
			c := make([]int, k)
			for r := uint64(0); r < total; r++ {
				if err := GrayUnrank(n, r, c); err != nil {
					t.Fatal(err)
				}
				got, err := GrayRank(n, c)
				if err != nil || got != r {
					t.Fatalf("n=%d k=%d: rank(unrank(%d)) = %d, %v", n, k, r, got, err)
				}
			}
		}
	}
}

// TestGraySuccessorMatchesUnrank walks the sequence with the successor and
// checks it against direct unranking at every rank - this pins the whole
// state machine.
func TestGraySuccessorMatchesUnrank(t *testing.T) {
	for n := 1; n <= 10; n++ {
		for k := 1; k <= n; k++ {
			total, _ := combin.Binomial64(n, k)
			cur := make([]int, k)
			for i := range cur {
				cur[i] = i
			}
			want := make([]int, k)
			for r := uint64(0); r < total; r++ {
				if err := GrayUnrank(n, r, want); err != nil {
					t.Fatal(err)
				}
				if fmt.Sprint(cur) != fmt.Sprint(want) {
					t.Fatalf("n=%d k=%d rank %d: successor %v, unrank %v", n, k, r, cur, want)
				}
				ok := graySuccessor(n, cur)
				if ok != (r+1 < total) {
					t.Fatalf("n=%d k=%d rank %d: successor continue=%v", n, k, r, ok)
				}
			}
		}
	}
}

func TestGraySuccessor256(t *testing.T) {
	// Spot-check at full width: successor then rank must increment.
	for k := 1; k <= 5; k++ {
		total, _ := combin.Binomial64(256, k)
		for _, r := range []uint64{0, 1, total / 3, total / 2, total - 2} {
			c := make([]int, k)
			if err := GrayUnrank(256, r, c); err != nil {
				t.Fatal(err)
			}
			if !graySuccessor(256, c) {
				t.Fatalf("k=%d rank %d: unexpected end", k, r)
			}
			got, err := GrayRank(256, c)
			if err != nil || got != r+1 {
				t.Fatalf("k=%d: rank after successor = %d, want %d (%v)", k, got, r+1, err)
			}
		}
	}
}

func TestEnumerateStatesMatchesUnrank(t *testing.T) {
	n, k, parts := 12, 3, 8
	states, err := EnumerateStates(n, k, parts)
	if err != nil {
		t.Fatal(err)
	}
	ranges, _ := Partition(n, k, parts)
	if len(states) != parts {
		t.Fatalf("got %d states, want %d", len(states), parts)
	}
	want := make([]int, k)
	for i, r := range ranges {
		if r.Count == 0 {
			if states[i] != nil {
				t.Errorf("part %d: expected nil state for empty range", i)
			}
			continue
		}
		if err := GrayUnrank(n, r.Start, want); err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(states[i]) != fmt.Sprint(want) {
			t.Errorf("part %d: state %v, unrank %v", i, states[i], want)
		}
	}
}

func TestEnumerateStatesMorePartsThanCombos(t *testing.T) {
	states, err := EnumerateStates(4, 3, 10) // C(4,3) = 4 < 10 parts
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 10 {
		t.Fatalf("got %d states", len(states))
	}
	nonNil := 0
	for _, s := range states {
		if s != nil {
			nonNil++
		}
	}
	if nonNil != 4 {
		t.Errorf("%d non-nil states, want 4", nonNil)
	}
}

func TestApplySeed(t *testing.T) {
	base := u256.FromUint64(0)
	seed := ApplySeed(base, []int{0, 7, 255})
	if seed.OnesCount() != 3 || seed.Bit(0) != 1 || seed.Bit(7) != 1 || seed.Bit(255) != 1 {
		t.Errorf("ApplySeed wrong: %v", seed)
	}
	// Flipping set bits clears them.
	if got := ApplySeed(seed, []int{7}); got.Bit(7) != 0 || got.OnesCount() != 2 {
		t.Errorf("ApplySeed flip-down wrong: %v", got)
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(GrayCode, 256, 128, 0, -1); err == nil {
		t.Error("expected overflow error for C(256,128)")
	}
	if _, err := New(GrayCode, 8, 3, 100, -1); err == nil {
		t.Error("expected start-rank error")
	}
	if _, err := New(Method(99), 8, 3, 0, -1); err == nil {
		t.Error("expected unknown-method error")
	}
	if _, err := Partition(8, 3, 0); err == nil {
		t.Error("expected parts error")
	}
}

func TestCountZeroYieldsNothing(t *testing.T) {
	for _, method := range Methods() {
		it, err := New(method, 8, 3, 5, 0)
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if it.Next(make([]int, 3)) {
			t.Errorf("%v: Next produced a combination with count 0", method)
		}
	}
}

func TestMethodString(t *testing.T) {
	if GrayCode.String() != "graycode" || Method(99).String() != "Method(99)" {
		t.Error("Method.String wrong")
	}
}

// Per-seed iteration cost benchmarks: these measured ratios feed the GPU
// and APU timing models (Table 4's shape).
func benchMethod(b *testing.B, method Method) {
	total, _ := combin.Binomial64(256, 5)
	c := make([]int, 5)
	it, err := New(method, 256, 5, 0, -1)
	if err != nil {
		b.Fatal(err)
	}
	n := int64(0)
	for i := 0; i < b.N; i++ {
		if !it.Next(c) {
			it, _ = New(method, 256, 5, 0, -1)
			it.Next(c)
		}
		n++
		if uint64(n) == total {
			n = 0
		}
	}
	sinkInt = c[0]
}

var sinkInt int

func BenchmarkIterGray256of5(b *testing.B)    { benchMethod(b, GrayCode) }
func BenchmarkIterAlg515_256of5(b *testing.B) { benchMethod(b, Alg515) }
func BenchmarkIterGosper256of5(b *testing.B)  { benchMethod(b, Gosper) }
func BenchmarkIterMifsud256of5(b *testing.B)  { benchMethod(b, Mifsud154) }

// TestNextMaskMatchesNext verifies, for every method across a sweep of
// (n, k, startRank), that the mask fast path produces exactly the masks
// of the combinations Next yields - the invariant the batched host
// search depends on.
func TestNextMaskMatchesNext(t *testing.T) {
	for _, method := range Methods() {
		for _, tc := range []struct {
			n, k  int
			start uint64
			count int64
		}{
			{8, 3, 0, -1},
			{10, 4, 7, -1},
			{12, 5, 100, 50},
			{256, 2, 1234, 200},
			{256, 5, 0, 300},
		} {
			ref, err := New(method, tc.n, tc.k, tc.start, tc.count)
			if err != nil {
				t.Fatalf("%v %+v: %v", method, tc, err)
			}
			got, err := New(method, tc.n, tc.k, tc.start, tc.count)
			if err != nil {
				t.Fatalf("%v %+v: %v", method, tc, err)
			}
			mi, ok := got.(MaskIter)
			if !ok {
				t.Fatalf("%v iterator does not implement MaskIter", method)
			}
			c := make([]int, tc.k)
			var mask u256.Uint256
			step := 0
			for ref.Next(c) {
				if !mi.NextMask(&mask) {
					t.Fatalf("%v %+v: NextMask exhausted at step %d", method, tc, step)
				}
				want := maskOf(c)
				if !mask.Equal(want) {
					t.Fatalf("%v %+v step %d: mask %v, want %v (comb %v)",
						method, tc, step, mask, want, c)
				}
				step++
			}
			if mi.NextMask(&mask) {
				t.Fatalf("%v %+v: NextMask yielded beyond Next's end", method, tc)
			}
		}
	}
}

// TestNextMaskInterleaved verifies Next and NextMask consume from the
// same sequence and stay consistent when interleaved.
func TestNextMaskInterleaved(t *testing.T) {
	for _, method := range Methods() {
		n, k := 10, 4
		ref, _ := New(method, n, k, 0, -1)
		it, _ := New(method, n, k, 0, -1)
		mi := it.(MaskIter)
		c := make([]int, k)
		refC := make([]int, k)
		var mask u256.Uint256
		for step := 0; ; step++ {
			ok := ref.Next(refC)
			if step%3 == 0 {
				if got := mi.NextMask(&mask); got != ok {
					t.Fatalf("%v step %d: NextMask=%v want %v", method, step, got, ok)
				}
				if ok && !mask.Equal(maskOf(refC)) {
					t.Fatalf("%v step %d: mask %v, want comb %v", method, step, mask, refC)
				}
			} else {
				if got := it.Next(c); got != ok {
					t.Fatalf("%v step %d: Next=%v want %v", method, step, got, ok)
				}
				if ok && fmt.Sprint(c) != fmt.Sprint(refC) {
					t.Fatalf("%v step %d: comb %v, want %v", method, step, c, refC)
				}
			}
			if !ok {
				break
			}
		}
	}
}

// TestApplyMask verifies the mask form of candidate generation agrees
// with ApplySeed.
func TestApplyMask(t *testing.T) {
	base := u256.New(0xDEADBEEF, 77, 0, 1<<63)
	c := []int{0, 63, 64, 255}
	if got, want := ApplyMask(base, maskOf(c)), ApplySeed(base, c); !got.Equal(want) {
		t.Fatalf("ApplyMask = %v, want %v", got, want)
	}
}

func benchMethodMask(b *testing.B, method Method) {
	it, err := New(method, 256, 5, 0, -1)
	if err != nil {
		b.Fatal(err)
	}
	mi := it.(MaskIter)
	var mask u256.Uint256
	for i := 0; i < b.N; i++ {
		if !mi.NextMask(&mask) {
			it, _ = New(method, 256, 5, 0, -1)
			mi = it.(MaskIter)
			mi.NextMask(&mask)
		}
	}
}

func BenchmarkIterMaskGray256of5(b *testing.B)    { benchMethodMask(b, GrayCode) }
func BenchmarkIterMaskAlg515_256of5(b *testing.B) { benchMethodMask(b, Alg515) }
func BenchmarkIterMaskGosper256of5(b *testing.B)  { benchMethodMask(b, Gosper) }
func BenchmarkIterMaskMifsud256of5(b *testing.B)  { benchMethodMask(b, Mifsud154) }
