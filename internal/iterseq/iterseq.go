// Package iterseq implements the seed-iteration algorithms of paper
// §3.2.1: the methods by which RBC search threads enumerate the d-bit-flip
// combinations of the 256-bit PUF seed space.
//
// Three families are provided, matching the paper's design space:
//
//   - Gosper: Gosper's hack lifted to 256-bit arithmetic, the method used
//     by prior RBC work. Enumerates masks in increasing numeric (colex)
//     order; partitioned via colex ranking.
//   - Alg515: Buckles-Lybanon lexicographic unranking (ACM Algorithm 515).
//     Pure random access - every combination is recomputed from its index,
//     so it parallelizes trivially but does the most work per seed.
//   - GrayCode: a revolving-door combinatorial Gray code. The paper uses
//     Chase's ACM Algorithm 382 here; the revolving-door code is the same
//     class of iterator (non-recursive minimal-change sequence with O(k)
//     state per thread, one element swapped per step) and additionally
//     supports exact ranking, so threads can seek straight to their
//     partition instead of loading precomputed checkpoint states. The
//     substitution is recorded in DESIGN.md.
//
// Mifsud's lexicographic successor (ACM Algorithm 154) is included as the
// historical baseline the paper's related-work section starts from.
//
// All iterators enumerate exactly the C(n,k) k-subsets of bit positions
// [0, n), each in its own order, and support starting at an arbitrary rank
// of that order, which is how the parallel search splits the space into
// disjoint per-thread subranges.
package iterseq

import (
	"fmt"

	"rbcsalted/internal/combin"
	"rbcsalted/internal/u256"
)

// Method identifies a seed-iteration algorithm.
type Method int

const (
	// GrayCode is the revolving-door minimal-change iterator (the paper's
	// Chase Algorithm 382 slot). Sequential, cheapest transition.
	GrayCode Method = iota
	// Alg515 is Buckles-Lybanon lexicographic unranking. Random access,
	// most work per seed.
	Alg515
	// Gosper is Gosper's hack on 256-bit integers, as used in prior RBC
	// work. Sequential in colex order.
	Gosper
	// Mifsud154 is the lexicographic successor baseline.
	Mifsud154
)

var methodNames = map[Method]string{
	GrayCode:  "graycode",
	Alg515:    "alg515",
	Gosper:    "gosper256",
	Mifsud154: "mifsud154",
}

// String returns the method's short name.
func (m Method) String() string {
	if s, ok := methodNames[m]; ok {
		return s
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Valid reports whether m names an implemented iteration method.
func (m Method) Valid() bool {
	_, ok := methodNames[m]
	return ok
}

// Methods lists all implemented methods in display order.
func Methods() []Method {
	return []Method{GrayCode, Alg515, Gosper, Mifsud154}
}

// Iter enumerates k-combinations of [0, n) in a method-specific order.
// Implementations are not safe for concurrent use; each search thread owns
// one.
type Iter interface {
	// Next writes the next combination into c as strictly increasing bit
	// positions and reports whether one was produced. len(c) must be k.
	Next(c []int) bool
}

// MaskIter is an Iter that can additionally produce each combination as a
// 256-bit flip mask (bit p set iff position p is in the combination).
// This is the host hot path's fast form: the minimal-change iterators
// (GrayCode, Gosper, Mifsud154) maintain the mask incrementally - a
// revolving-door step flips two mask bits instead of re-applying all k
// positions from scratch - while the random-access Alg515 rebuilds it per
// step, exactly mirroring each method's per-seed work profile on the GPU.
//
// The mask form requires n <= 256. All iterators returned by New
// implement MaskIter; Next and NextMask may be freely interleaved on the
// same iterator and consume from the same sequence.
type MaskIter interface {
	Iter
	// NextMask writes the next combination's flip mask into *mask and
	// reports whether one was produced.
	NextMask(mask *u256.Uint256) bool
}

// New returns an iterator for the given method over k-subsets of [0, n),
// positioned at startRank (in the method's own order) and yielding at most
// count combinations. count < 0 means "to the end of the sequence".
func New(method Method, n, k int, startRank uint64, count int64) (Iter, error) {
	total, ok := combin.Binomial64(n, k)
	if !ok {
		return nil, fmt.Errorf("iterseq: C(%d,%d) does not fit uint64", n, k)
	}
	if startRank > total {
		return nil, fmt.Errorf("iterseq: start rank %d beyond C(%d,%d)=%d", startRank, n, k, total)
	}
	remaining := int64(total - startRank)
	if count >= 0 && count < remaining {
		remaining = count
	}
	switch method {
	case GrayCode:
		return newGray(n, k, startRank, remaining)
	case Alg515:
		return newLex515(n, k, startRank, remaining)
	case Gosper:
		return newGosper(n, k, startRank, remaining)
	case Mifsud154:
		return newMifsud(n, k, startRank, remaining)
	default:
		return nil, fmt.Errorf("iterseq: unknown method %v", method)
	}
}

// ApplySeed returns base with the bits at the combination's positions
// flipped: the candidate seed for this combination.
func ApplySeed(base u256.Uint256, c []int) u256.Uint256 {
	for _, pos := range c {
		base = base.FlipBit(pos)
	}
	return base
}

// ApplyMask returns base with the mask's bits flipped: the candidate seed
// for a combination in mask form. It is a single 256-bit XOR, independent
// of the Hamming distance - the payoff of the MaskIter fast path.
func ApplyMask(base, mask u256.Uint256) u256.Uint256 {
	return base.Xor(mask)
}

// FillSeeds drains up to len(dst) candidates from the iterator's mask
// fast path into dst, returning how many were produced; fewer than
// len(dst) means the sequence is exhausted. This is the batched host
// engine's fill loop: one NextMask delta plus one 256-bit XOR per
// candidate, at whatever stride the batch engine asks for (the wide
// bit-sliced kernel consumes 256-candidate strides).
//
// scratch is caller-owned mask storage. It is a parameter, not a local,
// so the per-candidate NextMask call - an interface call the compiler
// cannot see through - never forces a fresh heap allocation per fill:
// the hot loop hoists the scratch next to its candidate buffer and the
// steady state allocates nothing.
func FillSeeds(mi MaskIter, base u256.Uint256, scratch *u256.Uint256, dst []u256.Uint256) int {
	n := 0
	for n < len(dst) && mi.NextMask(scratch) {
		dst[n] = ApplyMask(base, *scratch)
		n++
	}
	return n
}

// FillMasks drains up to len(dst) combination flip masks — not applied
// to any base — from the iterator's mask fast path, returning how many
// were produced; fewer than len(dst) means the sequence is exhausted.
// This is the batch-wise form of NextMask the sliced-domain delta engine
// consumes: it keeps the candidate batch resident in bit-sliced layout
// and advances lane i between batches by the XOR of that lane's
// consecutive masks (masks of equal popcount k differ in at most 2k
// bits), so it wants the raw masks, not base-applied seeds. Masks are
// written straight into dst; the steady state allocates nothing.
func FillMasks(mi MaskIter, dst []u256.Uint256) int {
	n := 0
	for n < len(dst) && mi.NextMask(&dst[n]) {
		n++
	}
	return n
}

// maskOf builds the flip mask for a combination. It requires every
// position to be in [0, 256).
func maskOf(c []int) u256.Uint256 {
	var m u256.Uint256
	for _, pos := range c {
		m = m.FlipBit(pos)
	}
	return m
}

// Partition divides the C(n,k) combination space into parts contiguous
// ranges (in any single method's order), returning the start rank and
// length of each. Lengths differ by at most one. Empty trailing parts are
// returned with length zero so callers can index partitions by thread id.
func Partition(n, k, parts int) ([]Range, error) {
	if parts <= 0 {
		return nil, fmt.Errorf("iterseq: parts must be positive, got %d", parts)
	}
	total, ok := combin.Binomial64(n, k)
	if !ok {
		return nil, fmt.Errorf("iterseq: C(%d,%d) does not fit uint64", n, k)
	}
	out := make([]Range, parts)
	base := total / uint64(parts)
	extra := total % uint64(parts)
	start := uint64(0)
	for i := range out {
		length := base
		if uint64(i) < extra {
			length++
		}
		out[i] = Range{Start: start, Count: length}
		start += length
	}
	return out, nil
}

// Range is a contiguous block of combination ranks assigned to one thread.
type Range struct {
	Start uint64
	Count uint64
}
