// Package keccak is a from-scratch implementation of the Keccak sponge
// family (FIPS 202): the Keccak-f[1600] permutation, SHA3-256 and SHA3-512
// fixed-output hashes, and the SHAKE128/SHAKE256 extendable-output
// functions.
//
// SHA-3 is the hash the paper standardizes on for the RBC-SALTED search,
// and SHAKE is the expansion primitive required by the LightSaber and
// Dilithium baselines. The package also provides Sum256Seed, the paper's
// §3.2.2 optimization: for the fixed 32-byte seeds hashed billions of
// times per search, padding is precomputed and the digest collapses to a
// single permutation call with no buffering or conditionals.
package keccak

import "math/bits"

// rounds is the number of rounds of Keccak-f[1600].
const rounds = 24

// roundConstants are the iota-step constants RC[0..23].
var roundConstants = [rounds]uint64{
	0x0000000000000001, 0x0000000000008082, 0x800000000000808a,
	0x8000000080008000, 0x000000000000808b, 0x0000000080000001,
	0x8000000080008081, 0x8000000000008009, 0x000000000000008a,
	0x0000000000000088, 0x0000000080008009, 0x000000008000000a,
	0x000000008000808b, 0x800000000000008b, 0x8000000000008089,
	0x8000000000008003, 0x8000000000008002, 0x8000000000000080,
	0x000000000000800a, 0x800000008000000a, 0x8000000080008081,
	0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
}

// rotc[x][y] is the rho-step rotation offset for lane (x, y).
var rotc = [5][5]uint{
	{0, 36, 3, 41, 18},
	{1, 44, 10, 45, 2},
	{62, 6, 43, 15, 61},
	{28, 55, 25, 21, 56},
	{27, 20, 39, 8, 14},
}

// permute applies Keccak-f[1600] in place. The state is indexed as
// a[x + 5y] holding lane (x, y), per the FIPS 202 convention.
func permute(a *[25]uint64) {
	for round := 0; round < rounds; round++ {
		// theta
		var c [5]uint64
		for x := 0; x < 5; x++ {
			c[x] = a[x] ^ a[x+5] ^ a[x+10] ^ a[x+15] ^ a[x+20]
		}
		for x := 0; x < 5; x++ {
			d := c[(x+4)%5] ^ bits.RotateLeft64(c[(x+1)%5], 1)
			for y := 0; y < 25; y += 5 {
				a[x+y] ^= d
			}
		}

		// rho and pi
		var b [25]uint64
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				b[y+5*((2*x+3*y)%5)] = bits.RotateLeft64(a[x+5*y], int(rotc[x][y]))
			}
		}

		// chi
		for y := 0; y < 25; y += 5 {
			for x := 0; x < 5; x++ {
				a[x+y] = b[x+y] ^ (^b[(x+1)%5+y] & b[(x+2)%5+y])
			}
		}

		// iota
		a[0] ^= roundConstants[round]
	}
}

// Permute exposes Keccak-f[1600] for the bit-sliced cross-validation tests
// and the APU execution engine.
func Permute(a *[25]uint64) { permute(a) }

// Rounds is the number of rounds of Keccak-f[1600].
const Rounds = rounds

// RoundConstant returns the iota-step constant RC[i] for round i.
func RoundConstant(i int) uint64 { return roundConstants[i] }

// RotationOffset returns the rho-step rotation for lane (x, y).
func RotationOffset(x, y int) uint { return rotc[x][y] }

// DomainSHA3 is the SHA-3 domain-separation suffix, exported for
// fixed-padding implementations outside this package.
const DomainSHA3 = dsSHA3
