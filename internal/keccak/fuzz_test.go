package keccak

import (
	"bytes"
	stdsha3 "crypto/sha3"
	"testing"
)

// FuzzSum256VsStdlib differentially tests the from-scratch SHA3-256
// against the standard library on arbitrary inputs.
func FuzzSum256VsStdlib(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("abc"))
	f.Add(bytes.Repeat([]byte{0x13}, 136)) // exact rate block
	f.Add(bytes.Repeat([]byte{0x5A}, 137))
	f.Fuzz(func(t *testing.T, data []byte) {
		if Sum256(data) != stdsha3.Sum256(data) {
			t.Fatalf("SHA3-256 mismatch for %d bytes", len(data))
		}
	})
}

// FuzzSHAKE128VsStdlib covers the XOF path, including the squeeze length.
func FuzzSHAKE128VsStdlib(f *testing.F) {
	f.Add([]byte("seed"), uint16(32))
	f.Add([]byte{}, uint16(1))
	f.Add(bytes.Repeat([]byte{9}, 200), uint16(400))
	f.Fuzz(func(t *testing.T, data []byte, n uint16) {
		length := int(n%512) + 1
		got := SumSHAKE128(data, length)
		want := stdsha3.SumSHAKE128(data, length)
		if !bytes.Equal(got, want) {
			t.Fatalf("SHAKE128 mismatch: %d in, %d out", len(data), length)
		}
	})
}
