package keccak

import "encoding/binary"

// Domain-separation suffixes appended before padding (FIPS 202 §6).
const (
	dsSHA3  = 0x06
	dsSHAKE = 0x1f
)

// Sponge is a Keccak[1600] sponge with a configurable rate and domain
// suffix. It implements the absorb/squeeze cycle shared by the SHA-3
// hashes and the SHAKE XOFs. The zero value is not valid; use newSponge
// or one of the exported constructors.
type Sponge struct {
	a         [25]uint64
	rate      int // bytes absorbed/squeezed per permutation
	ds        byte
	buf       [200]byte // partial-block staging area
	n         int       // bytes buffered (absorbing) or already squeezed (squeezing)
	squeezing bool
}

func newSponge(rate int, ds byte) *Sponge {
	return &Sponge{rate: rate, ds: ds}
}

// NewSHA3_256 returns a sponge computing SHA3-256 (rate 136).
func NewSHA3_256() *Sponge { return newSponge(136, dsSHA3) }

// NewSHA3_512 returns a sponge computing SHA3-512 (rate 72).
func NewSHA3_512() *Sponge { return newSponge(72, dsSHA3) }

// NewSHAKE128 returns the SHAKE128 extendable-output function (rate 168).
func NewSHAKE128() *Sponge { return newSponge(168, dsSHAKE) }

// NewSHAKE256 returns the SHAKE256 extendable-output function (rate 136).
func NewSHAKE256() *Sponge { return newSponge(136, dsSHAKE) }

// Reset returns the sponge to its initial empty state.
func (s *Sponge) Reset() {
	s.a = [25]uint64{}
	s.n = 0
	s.squeezing = false
}

// Write absorbs p. It panics if called after squeezing has begun, which
// indicates a protocol bug in the caller.
func (s *Sponge) Write(p []byte) (int, error) {
	if s.squeezing {
		panic("keccak: Write after Read")
	}
	n := len(p)
	for len(p) > 0 {
		c := copy(s.buf[s.n:s.rate], p)
		s.n += c
		p = p[c:]
		if s.n == s.rate {
			s.absorbBlock()
		}
	}
	return n, nil
}

func (s *Sponge) absorbBlock() {
	for i := 0; i < s.rate/8; i++ {
		s.a[i] ^= binary.LittleEndian.Uint64(s.buf[i*8:])
	}
	permute(&s.a)
	s.n = 0
}

// pad applies the domain suffix and the 10*1 pad, then permutes, leaving
// the sponge ready to squeeze.
func (s *Sponge) pad() {
	for i := s.n; i < s.rate; i++ {
		s.buf[i] = 0
	}
	s.buf[s.n] = s.ds
	s.buf[s.rate-1] |= 0x80
	for i := 0; i < s.rate/8; i++ {
		s.a[i] ^= binary.LittleEndian.Uint64(s.buf[i*8:])
	}
	permute(&s.a)
	s.squeezing = true
	s.n = 0
}

// Read squeezes len(p) bytes of output. The first call finalizes
// absorption. It never fails.
func (s *Sponge) Read(p []byte) (int, error) {
	if !s.squeezing {
		s.pad()
	}
	n := len(p)
	for len(p) > 0 {
		if s.n == s.rate {
			permute(&s.a)
			s.n = 0
		}
		avail := s.rate - s.n
		take := len(p)
		if take > avail {
			take = avail
		}
		for i := 0; i < take; i++ {
			p[i] = byte(s.a[(s.n+i)/8] >> (8 * uint((s.n+i)%8)))
		}
		s.n += take
		p = p[take:]
	}
	return n, nil
}

// Sum256 returns the SHA3-256 digest of data.
func Sum256(data []byte) [32]byte {
	s := NewSHA3_256()
	s.Write(data)
	var out [32]byte
	s.Read(out[:])
	return out
}

// Sum512 returns the SHA3-512 digest of data.
func Sum512(data []byte) [64]byte {
	s := NewSHA3_512()
	s.Write(data)
	var out [64]byte
	s.Read(out[:])
	return out
}

// SumSHAKE128 returns n bytes of SHAKE128 output for data.
func SumSHAKE128(data []byte, n int) []byte {
	s := NewSHAKE128()
	s.Write(data)
	out := make([]byte, n)
	s.Read(out)
	return out
}

// SumSHAKE256 returns n bytes of SHAKE256 output for data.
func SumSHAKE256(data []byte, n int) []byte {
	s := NewSHAKE256()
	s.Write(data)
	out := make([]byte, n)
	s.Read(out)
	return out
}

// Sum256Seed returns the SHA3-256 digest of a 32-byte seed via a single
// permutation with precomputed padding (paper §3.2.2). A 32-byte message
// fits one 136-byte rate block: lanes 0..3 carry the seed, lane 4's low
// byte is the 0x06 domain suffix, and lane 16's top byte is the final pad
// bit. No buffering, no length bookkeeping, no conditionals.
func Sum256Seed(seed *[32]byte) [32]byte {
	var a [25]uint64
	a[0] = binary.LittleEndian.Uint64(seed[0:8])
	a[1] = binary.LittleEndian.Uint64(seed[8:16])
	a[2] = binary.LittleEndian.Uint64(seed[16:24])
	a[3] = binary.LittleEndian.Uint64(seed[24:32])
	a[4] = dsSHA3
	a[16] = 0x80 << 56
	permute(&a)
	var out [32]byte
	binary.LittleEndian.PutUint64(out[0:8], a[0])
	binary.LittleEndian.PutUint64(out[8:16], a[1])
	binary.LittleEndian.PutUint64(out[16:24], a[2])
	binary.LittleEndian.PutUint64(out[24:32], a[3])
	return out
}
