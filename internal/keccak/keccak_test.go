package keccak

import (
	"bytes"
	stdsha3 "crypto/sha3"
	"encoding/hex"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSHA3KnownAnswers(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a"},
		{"abc", "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532"},
	}
	for _, c := range cases {
		got := Sum256([]byte(c.in))
		if hex.EncodeToString(got[:]) != c.want {
			t.Errorf("SHA3-256(%q) = %x, want %s", c.in, got, c.want)
		}
	}
}

func TestSHAKEKnownAnswers(t *testing.T) {
	if got := hex.EncodeToString(SumSHAKE128(nil, 16)); got != "7f9c2ba4e88f827d616045507605853e" {
		t.Errorf("SHAKE128(\"\") = %s", got)
	}
	if got := hex.EncodeToString(SumSHAKE256(nil, 16)); got != "46b9dd2b0ba88d13233b3feb743eeb24" {
		t.Errorf("SHAKE256(\"\") = %s", got)
	}
}

func TestSum256AgainstStdlib(t *testing.T) {
	f := func(data []byte) bool {
		return Sum256(data) == stdsha3.Sum256(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSum512AgainstStdlib(t *testing.T) {
	f := func(data []byte) bool {
		return Sum512(data) == stdsha3.Sum512(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSHAKEAgainstStdlib(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		data := make([]byte, r.Intn(400))
		r.Read(data)
		n := 1 + r.Intn(500)
		if !bytes.Equal(SumSHAKE128(data, n), stdsha3.SumSHAKE128(data, n)) {
			t.Fatalf("SHAKE128 mismatch len=%d n=%d", len(data), n)
		}
		if !bytes.Equal(SumSHAKE256(data, n), stdsha3.SumSHAKE256(data, n)) {
			t.Fatalf("SHAKE256 mismatch len=%d n=%d", len(data), n)
		}
	}
}

func TestLengthSweepAgainstStdlib(t *testing.T) {
	// Cross every rate boundary for both SHA-3 variants: rates are 136
	// and 72 bytes, so 0..300 covers multiple blocks and exact-fit pads.
	r := rand.New(rand.NewSource(12))
	for n := 0; n <= 300; n++ {
		data := make([]byte, n)
		r.Read(data)
		if Sum256(data) != stdsha3.Sum256(data) {
			t.Fatalf("SHA3-256 mismatch at length %d", n)
		}
		if Sum512(data) != stdsha3.Sum512(data) {
			t.Fatalf("SHA3-512 mismatch at length %d", n)
		}
	}
}

func TestStreamingWriteSplits(t *testing.T) {
	data := make([]byte, 500)
	rand.New(rand.NewSource(13)).Read(data)
	want := Sum256(data)
	for _, split := range []int{1, 9, 135, 136, 137, 272} {
		s := NewSHA3_256()
		for i := 0; i < len(data); i += split {
			end := min(i+split, len(data))
			s.Write(data[i:end])
		}
		var got [32]byte
		s.Read(got[:])
		if got != want {
			t.Errorf("split %d: mismatch", split)
		}
	}
}

func TestIncrementalSqueeze(t *testing.T) {
	// Squeezing in odd-sized chunks must equal one big squeeze.
	want := SumSHAKE128([]byte("seed material"), 333)
	s := NewSHAKE128()
	s.Write([]byte("seed material"))
	var got []byte
	buf := make([]byte, 7)
	for len(got) < 333 {
		take := min(7, 333-len(got))
		s.Read(buf[:take])
		got = append(got, buf[:take]...)
	}
	if !bytes.Equal(got, want) {
		t.Error("incremental squeeze differs from bulk squeeze")
	}
}

func TestWriteAfterReadPanics(t *testing.T) {
	s := NewSHAKE128()
	s.Write([]byte("x"))
	s.Read(make([]byte, 1))
	defer func() {
		if recover() == nil {
			t.Error("expected panic on Write after Read")
		}
	}()
	s.Write([]byte("y"))
}

func TestReset(t *testing.T) {
	s := NewSHA3_256()
	s.Write([]byte("garbage"))
	s.Read(make([]byte, 32))
	s.Reset()
	s.Write([]byte("abc"))
	var got [32]byte
	s.Read(got[:])
	if got != Sum256([]byte("abc")) {
		t.Error("Reset did not restore initial state")
	}
}

func TestSum256SeedMatchesGeneric(t *testing.T) {
	f := func(seed [32]byte) bool {
		return Sum256Seed(&seed) == Sum256(seed[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPermuteKnownState(t *testing.T) {
	// Keccak-f[1600] applied to the zero state: first lane of the result
	// is a fixed, well-known constant (from the Keccak reference KATs).
	var a [25]uint64
	Permute(&a)
	if a[0] != 0xf1258f7940e1dde7 {
		t.Errorf("permute(0)[0] = %#x, want 0xf1258f7940e1dde7", a[0])
	}
}

func BenchmarkSum256Seed(b *testing.B) {
	var seed [32]byte
	b.SetBytes(32)
	for i := 0; i < b.N; i++ {
		seed[0] = byte(i)
		sinkDigest = Sum256Seed(&seed)
	}
}

func BenchmarkSum256Generic32(b *testing.B) {
	seed := make([]byte, 32)
	b.SetBytes(32)
	for i := 0; i < b.N; i++ {
		seed[0] = byte(i)
		sinkDigest = Sum256(seed)
	}
}

func BenchmarkPermute(b *testing.B) {
	var a [25]uint64
	for i := 0; i < b.N; i++ {
		Permute(&a)
	}
}

var sinkDigest [32]byte
