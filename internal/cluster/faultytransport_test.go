package cluster

// Fault-injection harness: workers run over transports that kill the
// connection at arbitrary byte offsets, and searches are raced against
// externally-timed kills. The property under test is the coordinator's
// exactly-once coverage contract: whatever the failure pattern, a search
// that completes returns the same verdict as the local CPU backend, and
// an exhaustive search accounts every candidate seed exactly once (no
// double-counted re-dispatches, no dropped ranks).

import (
	"context"
	"math/rand/v2"
	"net"
	"sync"
	"testing"
	"time"

	"rbcsalted/internal/combin"
	"rbcsalted/internal/core"
	"rbcsalted/internal/cpu"
)

// faultyConn wraps a net.Conn and hard-kills it once the combined
// read+write byte count crosses the budget — the moral equivalent of a
// node losing power at a random point in the protocol stream.
type faultyConn struct {
	net.Conn
	mu     sync.Mutex
	budget int64
	dead   bool
}

func newFaultyConn(c net.Conn, budget int64) *faultyConn {
	return &faultyConn{Conn: c, budget: budget}
}

func (f *faultyConn) account(n int) {
	f.mu.Lock()
	f.budget -= int64(n)
	kill := f.budget <= 0 && !f.dead
	if kill {
		f.dead = true
	}
	f.mu.Unlock()
	if kill {
		f.Conn.Close()
	}
}

func (f *faultyConn) Read(p []byte) (int, error) {
	n, err := f.Conn.Read(p)
	f.account(n)
	return n, err
}

func (f *faultyConn) Write(p []byte) (int, error) {
	n, err := f.Conn.Write(p)
	f.account(n)
	return n, err
}

// faultClusterIterations is the property-test budget: the acceptance bar
// is 100 iterations with exact coverage, trimmed under -short.
func faultClusterIterations(t *testing.T) int {
	if testing.Short() {
		return 10
	}
	return 100
}

// TestClusterFaultInjectionProperty runs searches over fleets where a
// random subset of workers (always leaving at least one survivor) dies
// at a random byte offset of its transport, and asserts the result
// matches the local CPU backend — including exact exhaustive coverage.
func TestClusterFaultInjectionProperty(t *testing.T) {
	iters := faultClusterIterations(t)
	local := &cpu.Backend{Alg: core.SHA1, Workers: 2}
	for i := 0; i < iters; i++ {
		rng := rand.New(rand.NewPCG(uint64(i), 0xFA))
		nWorkers := 2 + rng.IntN(3)         // 2..4
		nFaulty := 1 + rng.IntN(nWorkers-1) // 1..nWorkers-1: at least one survivor

		coord := NewCoordinator(Config{
			Alg: core.SHA1,
			// Kills in this harness close the conn, so the read loop sees
			// them without heartbeat help; the timeout stays generous so a
			// race-detector-slowed ping never reaps a healthy survivor.
			HeartbeatInterval: 20 * time.Millisecond,
			HeartbeatTimeout:  time.Second,
			// Tight retry budget: dead-transport sends should fail over
			// to the survivors quickly.
			RetryBackoff: time.Millisecond,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go coord.Serve(ln)

		var conns []net.Conn
		for wi := 0; wi < nWorkers; wi++ {
			raw, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			conn := raw
			if wi < nFaulty {
				// Budget past the ~300-byte handshake so the worker is
				// admitted, then dies somewhere between its first job
				// frame and its last done frame.
				conn = newFaultyConn(raw, 400+int64(rng.IntN(8000)))
			}
			conns = append(conns, conn)
			w := &Worker{Cores: 1 + rng.IntN(3), Name: string(rune('A' + wi))}
			go w.Serve(conn)
		}
		if err := coord.WaitForWorkers(nWorkers, 5*time.Second); err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}

		task, client := clusterTask(core.SHA1, uint64(1000+i), 1+rng.IntN(2), 2)
		task.Exhaustive = i%2 == 0
		res, err := coord.Search(context.Background(), task)
		if err != nil {
			t.Fatalf("iter %d (faulty=%d/%d): search failed: %v", i, nFaulty, nWorkers, err)
		}
		lres, err := local.Search(context.Background(), task)
		if err != nil {
			t.Fatal(err)
		}
		if res.Found != lres.Found || !res.Seed.Equal(lres.Seed) || res.Distance != lres.Distance {
			t.Fatalf("iter %d: cluster %+v disagrees with local %+v", i, res, lres)
		}
		if !res.Seed.Equal(client) {
			t.Fatalf("iter %d: wrong seed", i)
		}
		if task.Exhaustive {
			want := combin.ExhaustiveSeeds(256, task.MaxDistance).Uint64()
			if res.SeedsCovered != want {
				t.Fatalf("iter %d: exhaustive covered %d, want %d (deaths=%d redispatches=%d)",
					i, res.SeedsCovered, want, coord.Stats().Deaths, coord.Stats().Redispatches)
			}
		}

		for _, c := range conns {
			c.Close()
		}
		coord.Close()
	}
}

// TestClusterTimedKillProperty kills 1..N-1 random workers at random
// wall-clock points while an exhaustive search is in flight (workers are
// throttled so the kill window overlaps the search) and asserts coverage
// stays exact.
func TestClusterTimedKillProperty(t *testing.T) {
	iters := faultClusterIterations(t) / 2
	for i := 0; i < iters; i++ {
		rng := rand.New(rand.NewPCG(uint64(i), 0xDE))
		nWorkers := 2 + rng.IntN(3)       // 2..4
		nKill := 1 + rng.IntN(nWorkers-1) // 1..nWorkers-1

		coord := NewCoordinator(Config{
			Alg:               core.SHA1,
			HeartbeatInterval: 20 * time.Millisecond,
			HeartbeatTimeout:  time.Second,
			RetryBackoff:      time.Millisecond,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go coord.Serve(ln)

		var conns []net.Conn
		for wi := 0; wi < nWorkers; wi++ {
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			conns = append(conns, conn)
			w := &Worker{
				Cores: 1,
				Name:  string(rune('A' + wi)),
				// Throttle so jobs outlive the kill window.
				chunkHook: func() { time.Sleep(3 * time.Millisecond) },
			}
			go w.Serve(conn)
		}
		if err := coord.WaitForWorkers(nWorkers, 5*time.Second); err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}

		task, client := clusterTask(core.SHA1, uint64(3000+i), 2, 2)
		task.Exhaustive = true

		// Kill nKill distinct workers at independent random points while
		// the search runs.
		victims := rng.Perm(nWorkers)[:nKill]
		var killers sync.WaitGroup
		for _, v := range victims {
			delay := time.Duration(rng.IntN(15)) * time.Millisecond
			conn := conns[v]
			killers.Add(1)
			go func() {
				defer killers.Done()
				time.Sleep(delay)
				conn.Close()
			}()
		}

		res, err := coord.Search(context.Background(), task)
		killers.Wait()
		if err != nil {
			t.Fatalf("iter %d (killed %d/%d): search failed: %v", i, nKill, nWorkers, err)
		}
		if !res.Found || !res.Seed.Equal(client) {
			t.Fatalf("iter %d: lost the seed: %+v", i, res)
		}
		want := combin.ExhaustiveSeeds(256, 2).Uint64()
		if res.SeedsCovered != want {
			t.Fatalf("iter %d: covered %d, want %d (deaths=%d redispatches=%d)",
				i, res.SeedsCovered, want, coord.Stats().Deaths, coord.Stats().Redispatches)
		}

		for _, c := range conns {
			c.Close()
		}
		coord.Close()
	}
}

// TestClusterFaultInjectionWithFallback runs the same property with
// every worker faulty and a local fallback configured: the coordinator
// must finish each orphaned range itself, still exactly once.
func TestClusterFaultInjectionWithFallback(t *testing.T) {
	iters := faultClusterIterations(t) / 4
	local := &cpu.Backend{Alg: core.SHA1, Workers: 2}
	for i := 0; i < iters; i++ {
		rng := rand.New(rand.NewPCG(uint64(i), 0xFB))
		nWorkers := 1 + rng.IntN(3)
		coord := NewCoordinator(Config{
			Alg:               core.SHA1,
			Fallback:          &cpu.Backend{Alg: core.SHA1},
			HeartbeatInterval: 20 * time.Millisecond,
			HeartbeatTimeout:  time.Second,
			RetryBackoff:      time.Millisecond,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go coord.Serve(ln)

		var conns []net.Conn
		for wi := 0; wi < nWorkers; wi++ {
			raw, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			conn := newFaultyConn(raw, 400+int64(rng.IntN(2000)))
			conns = append(conns, conn)
			w := &Worker{Cores: 1, Name: string(rune('A' + wi))}
			go w.Serve(conn)
		}
		if err := coord.WaitForWorkers(nWorkers, 5*time.Second); err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}

		task, client := clusterTask(core.SHA1, uint64(2000+i), 2, 2)
		task.Exhaustive = true
		res, err := coord.Search(context.Background(), task)
		if err != nil {
			t.Fatalf("iter %d: search failed despite fallback: %v", i, err)
		}
		lres, err := local.Search(context.Background(), task)
		if err != nil {
			t.Fatal(err)
		}
		if res.Found != lres.Found || !res.Seed.Equal(lres.Seed) {
			t.Fatalf("iter %d: cluster %+v disagrees with local %+v", i, res, lres)
		}
		if !res.Seed.Equal(client) {
			t.Fatalf("iter %d: wrong seed", i)
		}
		want := combin.ExhaustiveSeeds(256, 2).Uint64()
		if res.SeedsCovered != want {
			t.Fatalf("iter %d: covered %d, want %d", i, res.SeedsCovered, want)
		}

		for _, c := range conns {
			c.Close()
		}
		coord.Close()
	}
}
