package cluster

import (
	"context"
	"testing"
	"time"

	"rbcsalted/internal/combin"
	"rbcsalted/internal/core"
	"rbcsalted/internal/obs"
)

// TestClusterHedgeCoversStalledWorker is the deterministic hedging
// test: one healthy worker plus one that accepts its job and then goes
// silent. The straggling flight must be hedged onto the healthy worker
// after the fixed trigger, the search must complete with exactly-once
// coverage, and the winner must be counted exactly once in Stats.
func TestClusterHedgeCoversStalledWorker(t *testing.T) {
	reg := obs.NewRegistry()
	coord, ln, stop := startClusterCfg(t, Config{
		Alg:   core.SHA3,
		Hedge: HedgeConfig{Enabled: true, Delay: 50 * time.Millisecond},
		// Keep the reaper out of the race: the stalled worker must be
		// rescued by hedging, not by a heartbeat timeout.
		HeartbeatTimeout: 30 * time.Second,
		Metrics:          reg,
	}, []int{2})
	defer stop()

	// A worker that accepts jobs and never answers them. The hard
	// cancel sent when its hedge twin wins makes it drop off, resolving
	// its flight as a loss of an already-counted group.
	conn, welcome := dialRaw(t, ln.Addr().String(), &helloMsg{Proto: ProtoVersion, Cores: 1, Name: "stalled"})
	if !welcome.Accept {
		t.Fatalf("stalled worker rejected: %s", welcome.Reason)
	}
	go func() {
		for {
			kind, _, err := readMsg(conn)
			if err != nil {
				return
			}
			if kind == kindCancel {
				conn.Close()
				return
			}
		}
	}()
	if err := coord.WaitForWorkers(2, 2*time.Second); err != nil {
		t.Fatal(err)
	}

	task, client := clusterTask(core.SHA3, 8, 2, 2)
	task.Exhaustive = true
	start := time.Now()
	res, err := coord.Search(context.Background(), task)
	if err != nil {
		t.Fatalf("hedged search failed: %v", err)
	}
	if !res.Found || !res.Seed.Equal(client) {
		t.Fatalf("hedge lost the seed: %+v", res)
	}
	// Exactly-once coverage: the hedge twin replaces the stalled shard,
	// it does not add to it.
	want := combin.ExhaustiveSeeds(256, 2).Uint64()
	if res.SeedsCovered != want {
		t.Errorf("hedge double- or under-counted: covered %d, want %d", res.SeedsCovered, want)
	}
	// The search must not have waited anywhere near the 30s reap window.
	if d := time.Since(start); d > 10*time.Second {
		t.Errorf("hedged search took %v, expected the trigger to fire at ~50ms per shell", d)
	}

	st := coord.Stats()
	if st.Hedges == 0 {
		t.Error("no hedge launched for the stalled flight")
	}
	if st.HedgeWins == 0 {
		t.Error("hedge twin's win not counted")
	}
	if st.HedgeWins > st.Hedges {
		t.Errorf("HedgeWins %d exceeds Hedges %d", st.HedgeWins, st.Hedges)
	}
	snap := reg.Snapshot()
	if v, ok := snap["cluster_hedges"].(uint64); !ok || v == 0 {
		t.Errorf("cluster_hedges metric = %v", snap["cluster_hedges"])
	}
	if v, ok := snap["cluster_hedge_wins"].(uint64); !ok || v == 0 {
		t.Errorf("cluster_hedge_wins metric = %v", snap["cluster_hedge_wins"])
	}
}

// TestClusterHedgeDisabledByDefault: without Hedge.Enabled no hedge
// machinery runs, even with a fixed delay configured.
func TestClusterHedgeDisabledByDefault(t *testing.T) {
	coord, stop := startCluster(t, core.SHA3, []int{1, 1})
	defer stop()
	task, client := clusterTask(core.SHA3, 9, 1, 2)
	res, err := coord.Search(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || !res.Seed.Equal(client) {
		t.Fatalf("search failed: %+v", res)
	}
	if st := coord.Stats(); st.Hedges != 0 || st.HedgeWins != 0 {
		t.Errorf("hedges counted with hedging disabled: %+v", st)
	}
}
