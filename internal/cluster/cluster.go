// Package cluster scales SALTED-CPU across multiple compute nodes - the
// paper's §5 future-work direction, following the lineage of the
// distributed-memory MPI engine of Philabaum et al. [36].
//
// A Coordinator owns the RBC search and implements core.Backend; Workers
// connect over TCP, announce their capabilities (protocol version, core
// count, supported seed-iteration methods), and receive disjoint rank
// ranges of each Hamming shell, weighted by capacity. Workers chunk
// their ranges so a FOUND broadcast (the distributed analogue of the
// shared-memory early-exit flag) stops the whole cluster within one chunk.
//
// The coordinator is fault-tolerant: per-worker health is tracked with
// heartbeats over the same gob message stream, a worker that dies
// mid-shell has its unacknowledged range re-dispatched to the survivors
// (re-weighted by cores), workers may reconnect and rejoin the pool
// between shells, and an empty fleet degrades to a configurable local
// fallback backend instead of failing the search. Coverage accounting
// stays exact under any failure pattern because ranges are counted only
// from acknowledged done messages: a worker that vanishes reports
// nothing, so its whole range is re-run and counted exactly once.
//
// The control plane uses gob over length-prefixed frames; the data plane
// is the same real search loop as the single-node engine
// (core.SearchShellHost), so a cluster of one worker is bit-for-bit the
// local backend.
package cluster

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
)

// ProtoVersion is the cluster wire-protocol version. A worker and a
// coordinator must agree exactly: the hello/welcome exchange carries the
// version on both legs, and a mismatch yields ErrProtoVersion instead of
// an opaque gob decode failure deep into a search.
//
// Version history:
//
//	1 — unversioned seed protocol (hello carried only cores + name).
//	2 — versioned hello with capability set (max cores, iterseq methods),
//	    welcome ack with heartbeat cadence, ping heartbeats.
const ProtoVersion = 2

// ErrProtoVersion reports a cluster handshake between incompatible
// protocol versions. Both ends surface it: Worker.Serve/Run return it
// when the coordinator's welcome carries a different version (or rejects
// the hello), and the coordinator counts the rejected worker and closes
// the connection after telling it why.
var ErrProtoVersion = errors.New("cluster: wire protocol version mismatch")

// ChunkSeeds is the number of seeds a worker covers between looking for a
// cancel message; it bounds early-exit latency across the cluster.
const ChunkSeeds = 32768

// Message kinds.
const (
	kindHello byte = iota + 1
	kindJob
	kindDone
	kindCancel
	kindWelcome
	kindPing
)

// helloMsg announces a worker, its protocol version and its capability
// set. Proto and Methods are new in protocol version 2; a v1 worker's
// hello gob-decodes with Proto == 0 and is rejected by the welcome leg.
type helloMsg struct {
	// Proto is the worker's ProtoVersion.
	Proto int
	// Cores is the advertised capacity used for weighted partitioning.
	Cores int
	// Name labels the worker in coordinator logs and rejoin tracking.
	Name string
	// Methods lists the iterseq.Method values this worker can execute.
	// The coordinator skips workers lacking a job's iterator method.
	// Empty means all methods (a conservative default for compactness).
	Methods []int
}

// welcomeMsg is the coordinator's reply to a hello. It closes the
// version negotiation: Accept=false with the coordinator's Proto tells a
// mismatched worker exactly why it was turned away, and a worker
// likewise verifies the coordinator's Proto before serving jobs.
type welcomeMsg struct {
	// Proto is the coordinator's ProtoVersion.
	Proto int
	// Accept reports whether the worker joined the pool.
	Accept bool
	// Reason explains a rejection.
	Reason string
	// HeartbeatMillis is the ping cadence the coordinator expects; the
	// worker sends a ping at least this often. 0 disables heartbeats.
	HeartbeatMillis int
}

// jobMsg assigns one contiguous rank range of one shell.
type jobMsg struct {
	ID            uint64
	Base          [32]byte
	Alg           int
	Target        []byte
	Distance      int
	Method        int
	StartRank     uint64
	Count         uint64
	CheckInterval int
	Exhaustive    bool
}

// doneMsg reports a finished (or cancelled) job.
type doneMsg struct {
	ID      uint64
	Found   bool
	Seed    [32]byte
	Covered uint64
	Err     string
}

// cancelMsg aborts a job. Hard distinguishes a context cancellation
// (stop unconditionally, even exhaustive jobs) from the FOUND broadcast
// (early-exit semantics: exhaustive jobs keep covering their range).
type cancelMsg struct {
	ID   uint64
	Hard bool
}

// pingMsg is the worker->coordinator heartbeat. Any message refreshes
// the worker's liveness; the ping exists so an idle worker still proves
// it is alive between shells.
type pingMsg struct {
	// Seq is a monotonically increasing sequence number, for debugging.
	Seq uint64
}

// writeMsg frames and sends one gob-encoded message.
func writeMsg(w io.Writer, kind byte, v any) error {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(v); err != nil {
		return fmt.Errorf("cluster: encode: %w", err)
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(body.Len()+1))
	hdr[4] = kind
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body.Bytes())
	return err
}

// readMsg receives one framed message and decodes it into the value
// selected by its kind.
func readMsg(r io.Reader) (byte, any, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > 1<<20 {
		return 0, nil, fmt.Errorf("cluster: invalid frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	dec := gob.NewDecoder(bytes.NewReader(buf[1:]))
	switch buf[0] {
	case kindHello:
		var m helloMsg
		return buf[0], &m, dec.Decode(&m)
	case kindWelcome:
		var m welcomeMsg
		return buf[0], &m, dec.Decode(&m)
	case kindJob:
		var m jobMsg
		return buf[0], &m, dec.Decode(&m)
	case kindDone:
		var m doneMsg
		return buf[0], &m, dec.Decode(&m)
	case kindCancel:
		var m cancelMsg
		return buf[0], &m, dec.Decode(&m)
	case kindPing:
		var m pingMsg
		return buf[0], &m, dec.Decode(&m)
	default:
		return 0, nil, fmt.Errorf("cluster: unknown message kind %d", buf[0])
	}
}

// methodSupported reports whether a capability list admits method m.
// An empty list means the worker predates method filtering or supports
// everything — treat as universal.
func methodSupported(methods []int, m int) bool {
	if len(methods) == 0 {
		return true
	}
	for _, have := range methods {
		if have == m {
			return true
		}
	}
	return false
}
