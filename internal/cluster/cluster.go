// Package cluster scales SALTED-CPU across multiple compute nodes - the
// paper's §5 future-work direction, following the lineage of the
// distributed-memory MPI engine of Philabaum et al. [36].
//
// A Coordinator owns the RBC search and implements core.Backend; Workers
// connect over TCP, announce their core counts, and receive disjoint
// rank ranges of each Hamming shell, weighted by capacity. Workers chunk
// their ranges so a FOUND broadcast (the distributed analogue of the
// shared-memory early-exit flag) stops the whole cluster within one chunk.
//
// The control plane uses gob over length-prefixed frames; the data plane
// is the same real search loop as the single-node engine
// (core.SearchShellHost), so a cluster of one worker is bit-for-bit the
// local backend.
package cluster

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
)

// ChunkSeeds is the number of seeds a worker covers between looking for a
// cancel message; it bounds early-exit latency across the cluster.
const ChunkSeeds = 32768

// Message kinds.
const (
	kindHello byte = iota + 1
	kindJob
	kindDone
	kindCancel
)

// helloMsg announces a worker and its capacity.
type helloMsg struct {
	Cores int
	Name  string
}

// jobMsg assigns one contiguous rank range of one shell.
type jobMsg struct {
	ID            uint64
	Base          [32]byte
	Alg           int
	Target        []byte
	Distance      int
	Method        int
	StartRank     uint64
	Count         uint64
	CheckInterval int
	Exhaustive    bool
}

// doneMsg reports a finished (or cancelled) job.
type doneMsg struct {
	ID      uint64
	Found   bool
	Seed    [32]byte
	Covered uint64
	Err     string
}

// cancelMsg aborts a job. Hard distinguishes a context cancellation
// (stop unconditionally, even exhaustive jobs) from the FOUND broadcast
// (early-exit semantics: exhaustive jobs keep covering their range).
type cancelMsg struct {
	ID   uint64
	Hard bool
}

// writeMsg frames and sends one gob-encoded message.
func writeMsg(w io.Writer, kind byte, v any) error {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(v); err != nil {
		return fmt.Errorf("cluster: encode: %w", err)
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(body.Len()+1))
	hdr[4] = kind
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body.Bytes())
	return err
}

// readMsg receives one framed message and decodes it into the value
// selected by its kind.
func readMsg(r io.Reader) (byte, any, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > 1<<20 {
		return 0, nil, fmt.Errorf("cluster: invalid frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	dec := gob.NewDecoder(bytes.NewReader(buf[1:]))
	switch buf[0] {
	case kindHello:
		var m helloMsg
		return buf[0], &m, dec.Decode(&m)
	case kindJob:
		var m jobMsg
		return buf[0], &m, dec.Decode(&m)
	case kindDone:
		var m doneMsg
		return buf[0], &m, dec.Decode(&m)
	case kindCancel:
		var m cancelMsg
		return buf[0], &m, dec.Decode(&m)
	default:
		return 0, nil, fmt.Errorf("cluster: unknown message kind %d", buf[0])
	}
}
