package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rbcsalted/internal/combin"
	"rbcsalted/internal/core"
	"rbcsalted/internal/iterseq"
	"rbcsalted/internal/obs"
	"rbcsalted/internal/u256"
)

// Defaults applied by Config for zero fields.
const (
	// DefaultHeartbeatInterval is the worker ping cadence the coordinator
	// requests in its welcome message.
	DefaultHeartbeatInterval = 500 * time.Millisecond
	// DefaultHeartbeatTimeout is how long a worker may stay silent before
	// the coordinator declares it dead and re-dispatches its work.
	DefaultHeartbeatTimeout = 4 * DefaultHeartbeatInterval
	// DefaultSendRetries is the number of re-attempts after a failed job
	// send before the worker is declared dead.
	DefaultSendRetries = 3
	// DefaultRetryBackoff is the initial delay between send retries; it
	// doubles per attempt, capped at MaxRetryBackoff.
	DefaultRetryBackoff = 10 * time.Millisecond
	// MaxRetryBackoff caps the exponential send-retry backoff.
	MaxRetryBackoff = 250 * time.Millisecond
	// DefaultDrainTimeout bounds how long Close waits for in-flight
	// searches to finish before disconnecting the fleet.
	DefaultDrainTimeout = 10 * time.Second

	// flightLatencyRing is the sample window behind the
	// percentile-derived hedge trigger.
	flightLatencyRing = 256
)

// HedgeConfig tunes hedged shard dispatch: a flight (one shard on one
// worker) still unacknowledged after the hedge delay is duplicated onto
// a different worker, the first done message wins, and the straggler is
// hard-cancelled. A slow or half-dead worker then costs one hedge delay
// instead of a heartbeat timeout plus redispatch. Coverage is counted
// from the winning flight only, preserving the coordinator's
// exactly-once accounting.
type HedgeConfig struct {
	// Enabled turns hedged dispatch on.
	Enabled bool
	// Delay is a fixed hedge trigger. Zero derives the trigger from the
	// observed flight-latency distribution (Quantile); a fixed delay
	// makes tests deterministic.
	Delay time.Duration
	// Quantile is the flight-latency percentile used when Delay is zero;
	// 0 means 0.95.
	Quantile float64
	// MinDelay floors the derived trigger; 0 means 25ms.
	MinDelay time.Duration
	// MinSamples is how many completed flights must be observed before a
	// derived trigger fires; 0 means 16.
	MinSamples int
}

func (h HedgeConfig) quantile() float64 {
	if h.Quantile <= 0 || h.Quantile >= 1 {
		return 0.95
	}
	return h.Quantile
}

func (h HedgeConfig) minDelay() time.Duration {
	if h.MinDelay <= 0 {
		return 25 * time.Millisecond
	}
	return h.MinDelay
}

func (h HedgeConfig) minSamples() int {
	if h.MinSamples <= 0 {
		return 16
	}
	return h.MinSamples
}

// ErrClosed reports a Search submitted after Close.
var ErrClosed = errors.New("cluster: coordinator closed")

// errNoWorkers is the internal signal that a dispatch found no eligible
// live worker. Exported behaviour: Search fails with a descriptive error
// unless Config.Fallback turns it into degraded-mode execution.
var errNoWorkers = errors.New("cluster: no workers registered")

// Config tunes a Coordinator's fault-tolerance behaviour. The zero value
// is fully usable: every field has a documented default.
type Config struct {
	// Alg is the hash algorithm the cluster searches with.
	Alg core.HashAlg
	// Fallback, when non-nil, enables degraded mode: a Search arriving
	// with an empty fleet is delegated to this local backend instead of
	// failing, and a shell whose workers all die mid-flight finishes its
	// unowned ranges on the coordinator's own cores. Leave nil to keep
	// the strict fail-fast behaviour.
	Fallback core.Backend
	// HeartbeatInterval is the ping cadence requested from workers; 0
	// means DefaultHeartbeatInterval, negative disables heartbeats (death
	// is then detected only by connection errors).
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is the silence window after which a worker is
	// declared dead; 0 means 4x the effective interval.
	HeartbeatTimeout time.Duration
	// SendRetries is the number of retries for a transient job-send
	// failure; 0 means DefaultSendRetries, negative disables retries.
	SendRetries int
	// RetryBackoff is the initial send-retry delay, doubling per attempt
	// up to MaxRetryBackoff; 0 means DefaultRetryBackoff.
	RetryBackoff time.Duration
	// DrainTimeout bounds Close's wait for in-flight searches; 0 means
	// DefaultDrainTimeout, negative disables draining.
	DrainTimeout time.Duration
	// Hedge enables hedged shard dispatch for straggling flights (see
	// HedgeConfig).
	Hedge HedgeConfig
	// Metrics, when non-nil, publishes the cluster fault-tolerance
	// counters (cluster_worker_deaths, cluster_redispatches,
	// cluster_rejoins, cluster_fallbacks, cluster_proto_rejects) and the
	// cluster_redispatch_latency_seconds histogram into the registry.
	Metrics *obs.Registry
}

// Stats is a point-in-time snapshot of the coordinator's fleet and
// fault-tolerance counters.
type Stats struct {
	// Workers and Cores describe the live fleet.
	Workers int
	Cores   int
	// Deaths counts worker connections lost (error, heartbeat timeout or
	// orderly departure). Rejoins counts admissions of a worker name seen
	// before — a death followed by a rejoin is the reconnect cycle.
	Deaths  uint64
	Rejoins uint64
	// Redispatches counts seed-rank ranges re-assigned after their owner
	// died mid-shell.
	Redispatches uint64
	// Fallbacks counts searches or shell ranges served by the local
	// fallback path because the fleet was empty.
	Fallbacks uint64
	// ProtoRejects counts handshakes refused for a protocol-version
	// mismatch or a malformed hello.
	ProtoRejects uint64
	// Hedges counts flights duplicated onto a second worker after
	// straggling past the hedge trigger; HedgeWins counts the hedges
	// whose duplicate answered first. The gap between them is wasted
	// duplicate work — the price of the tail-latency insurance.
	Hedges    uint64
	HedgeWins uint64
	// Degraded reports that the coordinator currently has no live
	// workers, so searches are served by Config.Fallback (or fail).
	Degraded bool
}

// Coordinator owns a distributed RBC search. It implements core.Backend:
// a Task is split shell by shell over the registered workers, weighted by
// their core counts, with a FOUND result cancelling the rest of the
// cluster.
//
// The coordinator survives worker failure: a worker that dies mid-shell
// (connection error or heartbeat timeout) has its unacknowledged range
// re-dispatched to the survivors, re-weighted by their cores; a worker
// may reconnect at any time and is used from the next dispatch on.
// Coverage is counted only from acknowledged done messages, so every
// seed rank is accounted exactly once regardless of the failure pattern.
type Coordinator struct {
	// Alg is the hash algorithm the cluster searches with. Retained for
	// literal construction (&Coordinator{Alg: ...}); NewCoordinator sets
	// it from Config.Alg.
	Alg core.HashAlg

	cfg      Config
	initOnce sync.Once
	stop     chan struct{} // closes the health monitor
	stopOnce sync.Once

	mu      sync.Mutex
	workers []*workerConn
	seen    map[string]bool // worker names admitted at least once
	nextJob uint64
	ln      net.Listener
	closed  bool

	// searches tracks in-flight Search calls for Close's drain.
	searches sync.WaitGroup

	deaths       atomic.Uint64
	rejoins      atomic.Uint64
	redispatches atomic.Uint64
	fallbacks    atomic.Uint64
	protoRejects atomic.Uint64
	hedges       atomic.Uint64
	hedgeWins    atomic.Uint64

	// latMu guards the flight-latency ring feeding the derived hedge
	// trigger.
	latMu      sync.Mutex
	latSamples [flightLatencyRing]float64
	latCount   int
	latNext    int

	mDeaths       *obs.Counter
	mRedispatches *obs.Counter
	mRejoins      *obs.Counter
	mFallbacks    *obs.Counter
	mProtoRejects *obs.Counter
	mHedges       *obs.Counter
	mHedgeWins    *obs.Counter
	hRedispatch   *obs.Histogram
}

// NewCoordinator builds a coordinator with cfg's fault-tolerance policy
// (zero fields take the documented defaults). The zero-value
// &Coordinator{Alg: alg} remains valid and is equivalent to
// NewCoordinator(Config{Alg: alg}).
func NewCoordinator(cfg Config) *Coordinator {
	c := &Coordinator{Alg: cfg.Alg, cfg: cfg}
	c.init()
	return c
}

// init applies config defaults, wires metrics and starts the health
// monitor. Called lazily so literally-constructed coordinators behave
// identically to NewCoordinator ones.
func (c *Coordinator) init() {
	c.initOnce.Do(func() {
		if c.cfg.HeartbeatInterval == 0 {
			c.cfg.HeartbeatInterval = DefaultHeartbeatInterval
		}
		if c.cfg.HeartbeatTimeout == 0 {
			if c.cfg.HeartbeatInterval > 0 {
				c.cfg.HeartbeatTimeout = 4 * c.cfg.HeartbeatInterval
			} else {
				c.cfg.HeartbeatTimeout = DefaultHeartbeatTimeout
			}
		}
		if c.cfg.SendRetries == 0 {
			c.cfg.SendRetries = DefaultSendRetries
		}
		if c.cfg.RetryBackoff == 0 {
			c.cfg.RetryBackoff = DefaultRetryBackoff
		}
		if c.cfg.DrainTimeout == 0 {
			c.cfg.DrainTimeout = DefaultDrainTimeout
		}
		c.seen = make(map[string]bool)
		c.stop = make(chan struct{})
		if reg := c.cfg.Metrics; reg != nil {
			c.mDeaths = reg.Counter("cluster_worker_deaths")
			c.mRedispatches = reg.Counter("cluster_redispatches")
			c.mRejoins = reg.Counter("cluster_rejoins")
			c.mFallbacks = reg.Counter("cluster_fallbacks")
			c.mProtoRejects = reg.Counter("cluster_proto_rejects")
			c.mHedges = reg.Counter("cluster_hedges")
			c.mHedgeWins = reg.Counter("cluster_hedge_wins")
			c.hRedispatch = reg.Histogram("cluster_redispatch_latency_seconds", obs.DefLatencyBuckets)
		}
		if c.cfg.HeartbeatInterval > 0 {
			go c.monitor()
		}
	})
}

// workerConn is the coordinator's view of one connected worker.
type workerConn struct {
	name    string
	cores   int
	methods []int
	conn    net.Conn
	writeMu sync.Mutex

	// lastSeen is the unix-nano timestamp of the last message received
	// from the worker (done, ping, anything); the health monitor declares
	// the worker dead when it goes stale past the heartbeat timeout.
	lastSeen atomic.Int64

	mu      sync.Mutex
	pending map[uint64]chan jobResult
	gone    bool
}

// jobResult is what a dispatched flight resolves to: either the worker's
// done message, or lost=true when the worker died before answering (the
// flight's range must be re-dispatched).
type jobResult struct {
	msg  *doneMsg
	lost bool
}

func (wc *workerConn) send(kind byte, v any) error {
	wc.writeMu.Lock()
	defer wc.writeMu.Unlock()
	return writeMsg(wc.conn, kind, v)
}

// markGone flips the worker to dead exactly once and resolves every
// pending flight as lost. Returns false if the worker was already gone.
func (wc *workerConn) markGone() bool {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	if wc.gone {
		return false
	}
	wc.gone = true
	for id, ch := range wc.pending {
		ch <- jobResult{lost: true}
		delete(wc.pending, id)
	}
	return true
}

// Serve accepts worker connections until the listener closes.
func (c *Coordinator) Serve(ln net.Listener) error {
	c.init()
	c.mu.Lock()
	c.ln = ln
	c.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go c.Admit(conn)
	}
}

// Close stops accepting workers, waits up to Config.DrainTimeout for
// in-flight searches to finish, then disconnects the fleet and stops the
// health monitor. Safe to call more than once.
func (c *Coordinator) Close() error {
	c.init()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	ln := c.ln
	c.mu.Unlock()

	var err error
	if ln != nil {
		err = ln.Close()
	}
	if c.cfg.DrainTimeout > 0 {
		drained := make(chan struct{})
		go func() {
			c.searches.Wait()
			close(drained)
		}()
		select {
		case <-drained:
		case <-time.After(c.cfg.DrainTimeout):
		}
	}
	c.stopOnce.Do(func() { close(c.stop) })
	c.mu.Lock()
	workers := c.workers
	c.workers = nil
	c.mu.Unlock()
	for _, wc := range workers {
		wc.conn.Close()
	}
	return err
}

// monitor watches worker liveness: a worker silent for longer than the
// heartbeat timeout has its connection closed, which drives the regular
// death path (pending flights resolve as lost and get re-dispatched).
func (c *Coordinator) monitor() {
	tick := c.cfg.HeartbeatTimeout / 4
	if tick <= 0 {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			cutoff := time.Now().Add(-c.cfg.HeartbeatTimeout).UnixNano()
			c.mu.Lock()
			fleet := append([]*workerConn(nil), c.workers...)
			c.mu.Unlock()
			for _, wc := range fleet {
				if wc.lastSeen.Load() < cutoff {
					// The read loop unblocks with an error and runs the
					// death path; markGone here resolves pending flights
					// immediately rather than waiting for TCP teardown.
					wc.conn.Close()
					c.reap(wc)
				}
			}
		}
	}
}

// Admit performs the versioned hello/welcome exchange on an established
// connection and, on success, serves the worker's messages until it
// disconnects. Serve calls it for every accepted TCP connection; tests
// and alternative transports may call it directly with any net.Conn.
func (c *Coordinator) Admit(conn net.Conn) {
	c.init()
	reject := func(reason string) {
		c.protoRejects.Add(1)
		if c.mProtoRejects != nil {
			c.mProtoRejects.Inc()
		}
		_ = writeMsg(conn, kindWelcome, &welcomeMsg{
			Proto:  ProtoVersion,
			Accept: false,
			Reason: reason,
		})
		conn.Close()
	}

	kind, msg, err := readMsg(conn)
	if err != nil || kind != kindHello {
		reject("expected hello")
		return
	}
	hello := msg.(*helloMsg)
	if hello.Proto != ProtoVersion {
		// Typed on this end too: the reject counter plus the welcome's
		// version tell both sides exactly what went wrong.
		reject(fmt.Sprintf("%v: coordinator speaks v%d, worker v%d",
			ErrProtoVersion, ProtoVersion, hello.Proto))
		return
	}
	if hello.Cores <= 0 {
		reject(fmt.Sprintf("invalid core count %d", hello.Cores))
		return
	}
	beatMillis := 0
	if c.cfg.HeartbeatInterval > 0 {
		beatMillis = int(c.cfg.HeartbeatInterval / time.Millisecond)
		if beatMillis == 0 {
			beatMillis = 1
		}
	}
	if err := writeMsg(conn, kindWelcome, &welcomeMsg{
		Proto:           ProtoVersion,
		Accept:          true,
		HeartbeatMillis: beatMillis,
	}); err != nil {
		conn.Close()
		return
	}

	wc := &workerConn{
		name:    hello.Name,
		cores:   hello.Cores,
		methods: hello.Methods,
		conn:    conn,
		pending: make(map[uint64]chan jobResult),
	}
	wc.lastSeen.Store(time.Now().UnixNano())
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return
	}
	if wc.name != "" {
		if c.seen[wc.name] {
			c.rejoins.Add(1)
			if c.mRejoins != nil {
				c.mRejoins.Inc()
			}
		}
		c.seen[wc.name] = true
	}
	c.workers = append(c.workers, wc)
	c.mu.Unlock()

	for {
		kind, msg, err := readMsg(conn)
		if err != nil {
			break
		}
		wc.lastSeen.Store(time.Now().UnixNano())
		switch kind {
		case kindDone:
			done := msg.(*doneMsg)
			wc.mu.Lock()
			ch, ok := wc.pending[done.ID]
			delete(wc.pending, done.ID)
			wc.mu.Unlock()
			if ok {
				ch <- jobResult{msg: done}
			}
		case kindPing:
			// Liveness only; lastSeen is already refreshed.
		default:
			// Unknown traffic from an admitted worker: ignore rather than
			// dropping the worker — forward compatibility for capability
			// messages added within the same protocol version.
		}
	}
	c.reap(wc)
	conn.Close()
}

// reap runs the death path for a worker: resolve its pending flights as
// lost, remove it from the pool and count the death. Idempotent — the
// health monitor and the read loop may both call it.
func (c *Coordinator) reap(wc *workerConn) {
	if !wc.markGone() {
		return
	}
	c.deaths.Add(1)
	if c.mDeaths != nil {
		c.mDeaths.Inc()
	}
	c.mu.Lock()
	for i, w := range c.workers {
		if w == wc {
			c.workers = append(c.workers[:i], c.workers[i+1:]...)
			break
		}
	}
	c.mu.Unlock()
}

// WaitForWorkers blocks until at least n workers are registered.
func (c *Coordinator) WaitForWorkers(n int, timeout time.Duration) error {
	c.init()
	deadline := time.Now().Add(timeout)
	for {
		c.mu.Lock()
		have := len(c.workers)
		c.mu.Unlock()
		if have >= n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: only %d/%d workers after %s", have, n, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Workers returns the current worker count and total cores.
func (c *Coordinator) Workers() (count, cores int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, w := range c.workers {
		cores += w.cores
	}
	return len(c.workers), cores
}

// Stats snapshots the fleet and the fault-tolerance counters.
func (c *Coordinator) Stats() Stats {
	n, cores := c.Workers()
	return Stats{
		Workers:      n,
		Cores:        cores,
		Deaths:       c.deaths.Load(),
		Rejoins:      c.rejoins.Load(),
		Redispatches: c.redispatches.Load(),
		Fallbacks:    c.fallbacks.Load(),
		ProtoRejects: c.protoRejects.Load(),
		Hedges:       c.hedges.Load(),
		HedgeWins:    c.hedgeWins.Load(),
		Degraded:     n == 0,
	}
}

// Degraded implements core.HealthReporter: true while the coordinator
// has no live workers and is serving through Config.Fallback (or failing
// searches, when no fallback is configured).
func (c *Coordinator) Degraded() bool {
	n, _ := c.Workers()
	return n == 0
}

// Name implements core.Backend.
func (c *Coordinator) Name() string {
	n, cores := c.Workers()
	return fmt.Sprintf("SALTED-CLUSTER(%s, %d workers, %d cores)", c.Alg, n, cores)
}

// eligibleFleet snapshots the live workers able to run method m.
func (c *Coordinator) eligibleFleet(m iterseq.Method) []*workerConn {
	c.mu.Lock()
	defer c.mu.Unlock()
	fleet := make([]*workerConn, 0, len(c.workers))
	for _, w := range c.workers {
		w.mu.Lock()
		gone := w.gone
		w.mu.Unlock()
		if gone || !methodSupported(w.methods, int(m)) {
			continue
		}
		fleet = append(fleet, w)
	}
	return fleet
}

// Search implements core.Backend: the real distributed search. A ctx
// cancellation is forwarded to every remote worker as a hard cancel
// message, so the whole fleet stops within one ChunkSeeds slice; the
// partial Result is returned with ctx.Err(). Worker deaths mid-search
// re-dispatch the dead workers' unacknowledged ranges to the survivors;
// with Config.Fallback set, an empty fleet degrades to local execution
// instead of failing.
func (c *Coordinator) Search(ctx context.Context, task core.Task) (core.Result, error) {
	c.init()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return core.Result{}, ErrClosed
	}
	c.searches.Add(1)
	c.mu.Unlock()
	defer c.searches.Done()

	core.TraceSearchStart(task, c.Name())
	res, err := c.search(ctx, task)
	core.TraceSearchEnd(task, c.Name(), res, err)
	return res, err
}

func (c *Coordinator) search(ctx context.Context, task core.Task) (core.Result, error) {
	if task.MaxDistance < 0 || task.MaxDistance > 10 {
		return core.Result{}, fmt.Errorf("cluster: MaxDistance %d outside supported range", task.MaxDistance)
	}
	if ctx == nil {
		ctx = context.Background()
	}

	// Degraded mode: an empty fleet at search entry delegates the whole
	// task to the local fallback backend.
	if len(c.eligibleFleet(task.Method)) == 0 && c.cfg.Fallback != nil {
		c.countFallback()
		return c.cfg.Fallback.Search(ctx, task)
	}

	start := time.Now()
	var res core.Result

	// Distance 0: skipped when MinDistance says the caller covered it.
	if task.IncludeBase() {
		res.HashesExecuted++
		res.SeedsCovered++
		if core.HashSeed(c.Alg, task.Base).Equal(task.Target) {
			res.Found = true
			res.Seed = task.Base
			res.Distance = 0
			if !task.Exhaustive {
				res.WallSeconds = time.Since(start).Seconds()
				res.DeviceSeconds = res.WallSeconds
				return res, nil
			}
		}
	}

	for d := task.StartShell(); d <= task.MaxDistance; d++ {
		if ctx.Err() != nil {
			res.WallSeconds = time.Since(start).Seconds()
			res.DeviceSeconds = res.WallSeconds
			return res, ctx.Err()
		}
		shellStart := time.Now()
		found, seed, covered, err := c.searchShell(ctx, task, d)
		st := core.ShellStat{
			Distance:      d,
			SeedsCovered:  covered,
			DeviceSeconds: time.Since(shellStart).Seconds(),
		}
		res.Shells = append(res.Shells, st)
		core.TraceShell(task, c.Name(), st)
		res.SeedsCovered += covered
		res.HashesExecuted += covered
		if found && !res.Found {
			res.Found = true
			res.Seed = seed
			res.Distance = d
		}
		if err != nil {
			res.WallSeconds = time.Since(start).Seconds()
			res.DeviceSeconds = res.WallSeconds
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return res, err
			}
			return core.Result{}, err
		}
		if res.Found && !task.Exhaustive {
			break
		}
		if task.TimeLimit > 0 && time.Since(start) > task.TimeLimit {
			res.TimedOut = true
			break
		}
	}
	res.WallSeconds = time.Since(start).Seconds()
	res.DeviceSeconds = res.WallSeconds
	return res, nil
}

func (c *Coordinator) countFallback() {
	c.fallbacks.Add(1)
	if c.mFallbacks != nil {
		c.mFallbacks.Inc()
	}
}

// shard is one contiguous seed-rank range of a shell awaiting coverage.
type shard struct {
	start uint64
	count uint64
}

// flight is one shard dispatched to one worker (or the local fallback).
type flight struct {
	wc    *workerConn // nil for a local-fallback flight
	id    uint64
	shard shard
	// sent is when the job went on the wire, for flight-latency samples.
	sent time.Time
	// group ties a primary flight and its hedge duplicate together; nil
	// when hedging is off or the flight runs on the local fallback.
	group *hedgeGroup
	// hedge marks the duplicate flight of a group.
	hedge bool
}

// hedgeGroup is the set of flights racing to cover one shard: the
// primary plus (after the hedge trigger) one duplicate. Only the first
// done message is counted; the group is accessed only from the owning
// searchShell loop, so it needs no locking.
type hedgeGroup struct {
	members  []*flight
	live     int // members in the air, neither done nor lost
	resolved bool
}

// flightResult pairs a resolved flight with its outcome.
type flightResult struct {
	fl  *flight
	res jobResult
}

// searchShell fans one Hamming shell out over the fleet and keeps it
// covered under worker failure: a flight whose worker dies resolves as
// lost and its shard is re-dispatched over the survivors (re-weighted by
// cores); with no survivors the shard runs on the local fallback path.
// With hedging enabled, a flight straggling past the hedge trigger races
// a duplicate on a different worker and the first done message wins.
func (c *Coordinator) searchShell(ctx context.Context, task core.Task, d int) (bool, u256.Uint256, uint64, error) {
	size, ok := combin.Binomial64(256, d)
	if !ok {
		return false, u256.Zero, 0, fmt.Errorf("cluster: C(256,%d) overflows uint64", d)
	}

	results := make(chan flightResult)
	var flights []*flight // every dispatched flight, for cancel broadcast
	var hedgeCh chan *flight
	var shellDone chan struct{}
	if c.cfg.Hedge.Enabled {
		hedgeCh = make(chan *flight)
		shellDone = make(chan struct{})
		defer close(shellDone)
	}

	var (
		found     bool
		foundSeed u256.Uint256
		covered   uint64
		firstErr  error
		cancelled bool
	)
	outstanding, err := c.dispatchShard(ctx, task, d, shard{0, size}, results, &flights, hedgeCh, shellDone)
	if err != nil {
		if outstanding == 0 {
			return false, u256.Zero, 0, err
		}
		// Some flights launched before the dispatch failed: drain them
		// below so no result goroutine is orphaned, then surface the
		// error.
		firstErr = err
	}
	ctxDone := ctx.Done()
	for outstanding > 0 {
		select {
		case fr := <-results:
			outstanding--
			g := fr.fl.group
			if fr.res.lost {
				if g != nil {
					g.live--
					if g.resolved || g.live > 0 {
						// The shard is already counted, or its hedge twin is
						// still in the air and covers the same ranks: no
						// redispatch needed for this loss.
						continue
					}
				}
				// The flight's worker died without acknowledging: nothing
				// of its range was counted, so re-dispatching the whole
				// shard keeps every rank covered exactly once. Skip the
				// re-dispatch when the search is already terminating.
				if cancelled || (found && !task.Exhaustive) {
					continue
				}
				redispatchStart := time.Now()
				n, derr := c.dispatchShard(ctx, task, d, fr.fl.shard, results, &flights, hedgeCh, shellDone)
				outstanding += n
				c.redispatches.Add(1)
				if c.mRedispatches != nil {
					c.mRedispatches.Inc()
				}
				if c.hRedispatch != nil {
					c.hRedispatch.Observe(time.Since(redispatchStart).Seconds())
				}
				if derr != nil && firstErr == nil {
					firstErr = derr
				}
				continue
			}
			if g != nil {
				if g.resolved {
					// The loser of a hedge race answering after the cancel:
					// its winner was already counted, so folding this done in
					// would double-count the shard.
					continue
				}
				g.resolved = true
				g.live--
				if fr.fl.hedge {
					c.hedgeWins.Add(1)
					if c.mHedgeWins != nil {
						c.mHedgeWins.Inc()
					}
				}
				// Hard-cancel the twin: its answer is no longer wanted even
				// in exhaustive mode — the winner covered the same ranks.
				for _, m := range g.members {
					if m != fr.fl && m.wc != nil {
						_ = m.wc.send(kindCancel, &cancelMsg{ID: m.id, Hard: true})
					}
				}
			}
			if !fr.fl.sent.IsZero() {
				c.observeFlight(time.Since(fr.fl.sent))
			}
			done := fr.res.msg
			if done.Err != "" && firstErr == nil {
				firstErr = errors.New(done.Err)
			}
			covered += done.Covered
			if done.Found && !found {
				found = true
				foundSeed = u256.FromBytes(done.Seed)
				if !task.Exhaustive {
					c.broadcastCancel(flights, false)
				}
			}
		case fl := <-hedgeCh:
			// A flight straggled past the hedge trigger. Skip when the
			// shard no longer needs insurance: already answered, search
			// terminating, or the flight was lost and redispatched.
			if cancelled || (found && !task.Exhaustive) {
				continue
			}
			g := fl.group
			if g == nil || g.resolved || g.live == 0 || len(g.members) > 1 {
				continue
			}
			if h := c.launchHedge(task, d, fl, results); h != nil {
				flights = append(flights, h)
				g.members = append(g.members, h)
				g.live++
				outstanding++
				c.hedges.Add(1)
				if c.mHedges != nil {
					c.mHedges.Inc()
				}
				obs.Emit(task.Trace, obs.TraceEvent{
					Kind:   obs.KindHedge,
					Search: task.TraceID,
					Depth:  d,
					N:      fl.shard.count,
					Dur:    time.Since(fl.sent),
				})
			}
		case <-ctxDone:
			if !cancelled {
				cancelled = true
				c.broadcastCancel(flights, true)
			}
			ctxDone = nil // broadcast once; keep draining done messages
		}
	}
	if cancelled && !found {
		return false, u256.Zero, covered, ctx.Err()
	}
	if firstErr != nil && !found {
		return false, u256.Zero, covered, firstErr
	}
	return found, foundSeed, covered, nil
}

// observeFlight feeds one completed flight's dispatch-to-done latency
// into the ring behind the derived hedge trigger.
func (c *Coordinator) observeFlight(dur time.Duration) {
	c.latMu.Lock()
	if c.latCount < flightLatencyRing {
		c.latSamples[c.latCount] = dur.Seconds()
		c.latCount++
	} else {
		c.latSamples[c.latNext] = dur.Seconds()
		c.latNext = (c.latNext + 1) % flightLatencyRing
	}
	c.latMu.Unlock()
}

// hedgeDelay returns the current hedge trigger: the configured fixed
// delay, or the configured percentile of observed flight latencies
// (floored at MinDelay), or 0 — meaning "do not hedge yet" — while too
// few flights have been observed.
func (c *Coordinator) hedgeDelay() time.Duration {
	h := c.cfg.Hedge
	if h.Delay > 0 {
		return h.Delay
	}
	c.latMu.Lock()
	n := c.latCount
	if n < h.minSamples() {
		c.latMu.Unlock()
		return 0
	}
	samples := make([]float64, n)
	copy(samples, c.latSamples[:n])
	c.latMu.Unlock()

	sort.Float64s(samples)
	idx := int(h.quantile() * float64(n))
	if idx >= n {
		idx = n - 1
	}
	d := time.Duration(samples[idx] * float64(time.Second))
	if min := h.minDelay(); d < min {
		d = min
	}
	return d
}

// launchHedge duplicates a straggling flight's whole shard onto one
// eligible worker other than the original. Best-effort: any failure
// (no second worker, send error) returns nil and the primary keeps
// flying alone.
func (c *Coordinator) launchHedge(task core.Task, d int, orig *flight, results chan flightResult) *flight {
	var w *workerConn
	for _, cand := range c.eligibleFleet(task.Method) {
		if cand != orig.wc {
			w = cand
			break
		}
	}
	if w == nil {
		return nil
	}
	c.mu.Lock()
	c.nextJob++
	id := c.nextJob
	c.mu.Unlock()
	ch := make(chan jobResult, 1)
	w.mu.Lock()
	gone := w.gone
	if !gone {
		w.pending[id] = ch
	}
	w.mu.Unlock()
	if gone {
		return nil
	}
	job := &jobMsg{
		ID:            id,
		Base:          task.Base.Bytes(),
		Alg:           int(c.Alg),
		Target:        task.Target.Bytes(),
		Distance:      d,
		Method:        int(task.Method),
		StartRank:     orig.shard.start,
		Count:         orig.shard.count,
		CheckInterval: task.EffectiveCheckInterval(),
		Exhaustive:    task.Exhaustive,
	}
	if err := w.send(kindJob, job); err != nil {
		w.mu.Lock()
		delete(w.pending, id)
		w.mu.Unlock()
		return nil
	}
	fl := &flight{wc: w, id: id, shard: orig.shard, sent: time.Now(), group: orig.group, hedge: true}
	go func() { results <- flightResult{fl: fl, res: <-ch} }()
	return fl
}

// broadcastCancel sends a cancel for every dispatched flight. Send
// failures are ignored: a dead worker needs no cancelling.
func (c *Coordinator) broadcastCancel(flights []*flight, hard bool) {
	for _, fl := range flights {
		if fl.wc == nil {
			continue // local flights honour ctx directly
		}
		_ = fl.wc.send(kindCancel, &cancelMsg{ID: fl.id, Hard: hard})
	}
}

// dispatchShard splits one shard over the currently eligible fleet,
// weighted by core counts, and starts a flight per sub-range. A send
// failure (after deadline-aware retries) kills that worker and re-splits
// the affected sub-range over the remaining fleet. With no eligible
// workers at all, the shard runs on the local fallback path when
// Config.Fallback is set, or the dispatch fails. Returns the number of
// flights started. A non-nil hedgeCh arms a hedge trigger per remote
// flight: the flight is offered for duplication if still unresolved
// after the hedge delay (shellDone disarms the timers when the shell
// completes first).
func (c *Coordinator) dispatchShard(ctx context.Context, task core.Task, d int, s shard, results chan flightResult, flights *[]*flight, hedgeCh chan *flight, shellDone chan struct{}) (int, error) {
	if s.count == 0 {
		return 0, nil
	}
	todo := []shard{s}
	started := 0
	for len(todo) > 0 {
		cur := todo[0]
		todo = todo[1:]
		fleet := c.eligibleFleet(task.Method)
		if len(fleet) == 0 {
			if c.cfg.Fallback == nil {
				return started, errNoWorkers
			}
			c.countFallback()
			started++
			*flights = append(*flights, c.launchLocal(ctx, task, d, cur, results))
			continue
		}
		totalCores := 0
		for _, w := range fleet {
			totalCores += w.cores
		}
		startRank := cur.start
		remaining := cur.count
		remainingCores := totalCores
		base := task.Base.Bytes()
		for _, w := range fleet {
			cnt := remaining * uint64(w.cores) / uint64(remainingCores)
			remainingCores -= w.cores
			if remainingCores == 0 {
				cnt = remaining
			}
			if cnt == 0 {
				continue
			}
			c.mu.Lock()
			c.nextJob++
			id := c.nextJob
			c.mu.Unlock()
			sub := shard{start: startRank, count: cnt}
			startRank += cnt
			remaining -= cnt

			ch := make(chan jobResult, 1)
			w.mu.Lock()
			gone := w.gone
			if !gone {
				w.pending[id] = ch
			}
			w.mu.Unlock()
			if gone {
				// Worker died between the fleet snapshot and dispatch:
				// push the sub-range back for a fresh split.
				todo = append(todo, sub)
				continue
			}
			job := &jobMsg{
				ID:            id,
				Base:          base,
				Alg:           int(c.Alg),
				Target:        task.Target.Bytes(),
				Distance:      d,
				Method:        int(task.Method),
				StartRank:     sub.start,
				Count:         sub.count,
				CheckInterval: task.EffectiveCheckInterval(),
				Exhaustive:    task.Exhaustive,
			}
			if err := c.sendJobRetry(ctx, w, job); err != nil {
				// Persistent send failure: the worker is dead to us. Remove
				// our pending entry (so the death path cannot also resolve
				// it), reap the worker, and re-split this sub-range.
				w.mu.Lock()
				delete(w.pending, id)
				w.mu.Unlock()
				w.conn.Close()
				c.reap(w)
				if ctx.Err() != nil {
					return started, ctx.Err()
				}
				todo = append(todo, sub)
				continue
			}
			fl := &flight{wc: w, id: id, shard: sub, sent: time.Now()}
			if hedgeCh != nil {
				fl.group = &hedgeGroup{members: []*flight{fl}, live: 1}
				if delay := c.hedgeDelay(); delay > 0 {
					go func(fl *flight) {
						t := time.NewTimer(delay)
						defer t.Stop()
						select {
						case <-t.C:
						case <-shellDone:
							return
						}
						select {
						case hedgeCh <- fl:
						case <-shellDone:
						}
					}(fl)
				}
			}
			*flights = append(*flights, fl)
			started++
			go func() { results <- flightResult{fl: fl, res: <-ch} }()
		}
	}
	return started, nil
}

// sendJobRetry sends a job with capped exponential backoff between
// attempts, giving transient transport hiccups a chance to clear. It
// aborts early when ctx is done (deadline-aware) or the worker is gone.
func (c *Coordinator) sendJobRetry(ctx context.Context, w *workerConn, job *jobMsg) error {
	backoff := c.cfg.RetryBackoff
	attempts := 1 + c.cfg.SendRetries
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(backoff):
			}
			backoff *= 2
			if backoff > MaxRetryBackoff {
				backoff = MaxRetryBackoff
			}
			w.mu.Lock()
			gone := w.gone
			w.mu.Unlock()
			if gone {
				return fmt.Errorf("cluster: worker %s died during send retry", w.name)
			}
		}
		if err = w.send(kindJob, job); err == nil {
			return nil
		}
	}
	return fmt.Errorf("cluster: dispatch to %s: %w", w.name, err)
}

// launchLocal runs one shard on the coordinator's own cores — the
// degraded-mode path when a shell's workers all died and nobody is left
// to take the work. It reuses the worker's chunked range loop, honouring
// ctx between chunks, and resolves like any other flight.
func (c *Coordinator) launchLocal(ctx context.Context, task core.Task, d int, s shard, results chan flightResult) *flight {
	fl := &flight{shard: s}
	go func() {
		out := &doneMsg{}
		cores := runtime.GOMAXPROCS(0)
		newMatcher := core.HashMatcherFactory(c.Alg, task.Target)
		for off := uint64(0); off < s.count; off += ChunkSeeds {
			if ctx.Err() != nil {
				break
			}
			chunk := min64(ChunkSeeds, s.count-off)
			found, seed, covered, err := searchRange(
				task.Base, d, task.Method, s.start+off, chunk, cores,
				task.EffectiveCheckInterval(), task.Exhaustive, newMatcher)
			if err != nil {
				out.Err = err.Error()
				break
			}
			out.Covered += covered
			if found && !out.Found {
				out.Found = true
				out.Seed = seed.Bytes()
				if !task.Exhaustive {
					break
				}
			}
		}
		results <- flightResult{fl: fl, res: jobResult{msg: out}}
	}()
	return fl
}
