package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"rbcsalted/internal/combin"
	"rbcsalted/internal/core"
	"rbcsalted/internal/u256"
)

// Coordinator owns a distributed RBC search. It implements core.Backend:
// a Task is split shell by shell over the registered workers, weighted by
// their core counts, with a FOUND result cancelling the rest of the
// cluster.
type Coordinator struct {
	// Alg is the hash algorithm the cluster searches with.
	Alg core.HashAlg

	mu      sync.Mutex
	workers []*workerConn
	nextJob uint64
	ln      net.Listener
}

// workerConn is the coordinator's view of one connected worker.
type workerConn struct {
	name    string
	cores   int
	conn    net.Conn
	writeMu sync.Mutex

	mu      sync.Mutex
	pending map[uint64]chan *doneMsg
	gone    bool
}

func (wc *workerConn) send(kind byte, v any) error {
	wc.writeMu.Lock()
	defer wc.writeMu.Unlock()
	return writeMsg(wc.conn, kind, v)
}

// Serve accepts worker connections until the listener closes.
func (c *Coordinator) Serve(ln net.Listener) error {
	c.mu.Lock()
	c.ln = ln
	c.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go c.admit(conn)
	}
}

// Close stops accepting workers and disconnects the fleet.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var err error
	if c.ln != nil {
		err = c.ln.Close()
	}
	for _, wc := range c.workers {
		wc.conn.Close()
	}
	c.workers = nil
	return err
}

// admit performs the hello exchange and starts the read loop.
func (c *Coordinator) admit(conn net.Conn) {
	kind, msg, err := readMsg(conn)
	if err != nil || kind != kindHello {
		conn.Close()
		return
	}
	hello := msg.(*helloMsg)
	if hello.Cores <= 0 {
		conn.Close()
		return
	}
	wc := &workerConn{
		name:    hello.Name,
		cores:   hello.Cores,
		conn:    conn,
		pending: make(map[uint64]chan *doneMsg),
	}
	c.mu.Lock()
	c.workers = append(c.workers, wc)
	c.mu.Unlock()

	for {
		kind, msg, err := readMsg(conn)
		if err != nil {
			break
		}
		if kind != kindDone {
			continue
		}
		done := msg.(*doneMsg)
		wc.mu.Lock()
		ch, ok := wc.pending[done.ID]
		delete(wc.pending, done.ID)
		wc.mu.Unlock()
		if ok {
			ch <- done
		}
	}
	// Worker left: fail its in-flight jobs and remove it from the pool.
	wc.mu.Lock()
	wc.gone = true
	for id, ch := range wc.pending {
		ch <- &doneMsg{ID: id, Err: "worker disconnected"}
		delete(wc.pending, id)
	}
	wc.mu.Unlock()
	c.mu.Lock()
	for i, w := range c.workers {
		if w == wc {
			c.workers = append(c.workers[:i], c.workers[i+1:]...)
			break
		}
	}
	c.mu.Unlock()
	conn.Close()
}

// WaitForWorkers blocks until at least n workers are registered.
func (c *Coordinator) WaitForWorkers(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		c.mu.Lock()
		have := len(c.workers)
		c.mu.Unlock()
		if have >= n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: only %d/%d workers after %s", have, n, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Workers returns the current worker count and total cores.
func (c *Coordinator) Workers() (count, cores int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, w := range c.workers {
		cores += w.cores
	}
	return len(c.workers), cores
}

// Name implements core.Backend.
func (c *Coordinator) Name() string {
	n, cores := c.Workers()
	return fmt.Sprintf("SALTED-CLUSTER(%s, %d workers, %d cores)", c.Alg, n, cores)
}

// Search implements core.Backend: the real distributed search. A ctx
// cancellation is forwarded to every remote worker as a hard cancel
// message, so the whole fleet stops within one ChunkSeeds slice; the
// partial Result is returned with ctx.Err().
func (c *Coordinator) Search(ctx context.Context, task core.Task) (core.Result, error) {
	core.TraceSearchStart(task, c.Name())
	res, err := c.search(ctx, task)
	core.TraceSearchEnd(task, c.Name(), res, err)
	return res, err
}

func (c *Coordinator) search(ctx context.Context, task core.Task) (core.Result, error) {
	if task.MaxDistance < 0 || task.MaxDistance > 10 {
		return core.Result{}, fmt.Errorf("cluster: MaxDistance %d outside supported range", task.MaxDistance)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	var res core.Result

	res.HashesExecuted++
	res.SeedsCovered++
	if core.HashSeed(c.Alg, task.Base).Equal(task.Target) {
		res.Found = true
		res.Seed = task.Base
		res.Distance = 0
		if !task.Exhaustive {
			res.WallSeconds = time.Since(start).Seconds()
			res.DeviceSeconds = res.WallSeconds
			return res, nil
		}
	}

	for d := 1; d <= task.MaxDistance; d++ {
		if ctx.Err() != nil {
			res.WallSeconds = time.Since(start).Seconds()
			res.DeviceSeconds = res.WallSeconds
			return res, ctx.Err()
		}
		shellStart := time.Now()
		found, seed, covered, err := c.searchShell(ctx, task, d)
		st := core.ShellStat{
			Distance:      d,
			SeedsCovered:  covered,
			DeviceSeconds: time.Since(shellStart).Seconds(),
		}
		res.Shells = append(res.Shells, st)
		core.TraceShell(task, c.Name(), st)
		res.SeedsCovered += covered
		res.HashesExecuted += covered
		if found && !res.Found {
			res.Found = true
			res.Seed = seed
			res.Distance = d
		}
		if err != nil {
			res.WallSeconds = time.Since(start).Seconds()
			res.DeviceSeconds = res.WallSeconds
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return res, err
			}
			return core.Result{}, err
		}
		if res.Found && !task.Exhaustive {
			break
		}
		if task.TimeLimit > 0 && time.Since(start) > task.TimeLimit {
			res.TimedOut = true
			break
		}
	}
	res.WallSeconds = time.Since(start).Seconds()
	res.DeviceSeconds = res.WallSeconds
	return res, nil
}

// searchShell fans one Hamming shell out over the fleet.
func (c *Coordinator) searchShell(ctx context.Context, task core.Task, d int) (bool, u256.Uint256, uint64, error) {
	c.mu.Lock()
	fleet := append([]*workerConn(nil), c.workers...)
	c.mu.Unlock()
	if len(fleet) == 0 {
		return false, u256.Zero, 0, errors.New("cluster: no workers registered")
	}
	size, ok := combin.Binomial64(256, d)
	if !ok {
		return false, u256.Zero, 0, fmt.Errorf("cluster: C(256,%d) overflows uint64", d)
	}

	totalCores := 0
	for _, w := range fleet {
		totalCores += w.cores
	}

	// Assign contiguous ranges proportional to core counts.
	type assignment struct {
		wc  *workerConn
		id  uint64
		ch  chan *doneMsg
		cnt uint64
	}
	var assignments []assignment
	startRank := uint64(0)
	remaining := size
	remainingCores := totalCores
	base := task.Base.Bytes()
	for _, w := range fleet {
		cnt := remaining * uint64(w.cores) / uint64(remainingCores)
		remainingCores -= w.cores
		if remainingCores == 0 {
			cnt = remaining
		}
		if cnt == 0 {
			continue
		}
		c.mu.Lock()
		c.nextJob++
		id := c.nextJob
		c.mu.Unlock()
		ch := make(chan *doneMsg, 1)
		w.mu.Lock()
		w.pending[id] = ch
		gone := w.gone
		w.mu.Unlock()
		if gone {
			return false, u256.Zero, 0, errors.New("cluster: worker disconnected during assignment")
		}
		job := &jobMsg{
			ID:            id,
			Base:          base,
			Alg:           int(c.Alg),
			Target:        task.Target.Bytes(),
			Distance:      d,
			Method:        int(task.Method),
			StartRank:     startRank,
			Count:         cnt,
			CheckInterval: task.CheckInterval,
			Exhaustive:    task.Exhaustive,
		}
		if err := w.send(kindJob, job); err != nil {
			return false, u256.Zero, 0, fmt.Errorf("cluster: dispatch to %s: %w", w.name, err)
		}
		assignments = append(assignments, assignment{wc: w, id: id, ch: ch, cnt: cnt})
		startRank += cnt
		remaining -= cnt
	}

	// Collect results; first FOUND cancels the rest of the fleet, and a
	// context cancellation hard-cancels it (workers still report their
	// partial coverage before the shell returns).
	var (
		found     bool
		foundSeed u256.Uint256
		covered   uint64
		firstErr  error
		cancelled bool
	)
	outstanding := len(assignments)
	cases := make(chan *doneMsg, outstanding)
	for _, a := range assignments {
		go func(a assignment) { cases <- <-a.ch }(a)
	}
	ctxDone := ctx.Done()
	for outstanding > 0 {
		select {
		case done := <-cases:
			outstanding--
			if done.Err != "" && firstErr == nil {
				firstErr = errors.New(done.Err)
			}
			covered += done.Covered
			if done.Found && !found {
				found = true
				foundSeed = u256.FromBytes(done.Seed)
				if !task.Exhaustive {
					for _, a := range assignments {
						_ = a.wc.send(kindCancel, &cancelMsg{ID: a.id})
					}
				}
			}
		case <-ctxDone:
			if !cancelled {
				cancelled = true
				for _, a := range assignments {
					_ = a.wc.send(kindCancel, &cancelMsg{ID: a.id, Hard: true})
				}
			}
			ctxDone = nil // broadcast once; keep draining done messages
		}
	}
	if cancelled && !found {
		return false, u256.Zero, covered, ctx.Err()
	}
	if firstErr != nil && !found {
		return false, u256.Zero, covered, firstErr
	}
	return found, foundSeed, covered, nil
}
