package cluster

import (
	"context"
	"errors"
	"math/rand/v2"
	"net"
	"strings"
	"testing"
	"time"

	"rbcsalted/internal/combin"
	"rbcsalted/internal/core"
	"rbcsalted/internal/cpu"
	"rbcsalted/internal/iterseq"
	"rbcsalted/internal/obs"
	"rbcsalted/internal/puf"
	"rbcsalted/internal/u256"
)

func startClusterCfg(t *testing.T, cfg Config, workerCores []int) (*Coordinator, net.Listener, func()) {
	t.Helper()
	coord := NewCoordinator(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go coord.Serve(ln)
	stops := make([]chan struct{}, 0, len(workerCores))
	for i, cores := range workerCores {
		w := &Worker{Cores: cores, Name: string(rune('a' + i))}
		stop := make(chan struct{})
		stops = append(stops, stop)
		go RunWorkerUntil(ln.Addr().String(), w, stop)
	}
	if err := coord.WaitForWorkers(len(workerCores), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	return coord, ln, func() {
		for _, s := range stops {
			close(s)
		}
		coord.Close()
	}
}

func startCluster(t *testing.T, alg core.HashAlg, workerCores []int) (*Coordinator, func()) {
	t.Helper()
	coord, _, stop := startClusterCfg(t, Config{Alg: alg}, workerCores)
	return coord, stop
}

func clusterTask(alg core.HashAlg, seed uint64, d, maxD int) (core.Task, u256.Uint256) {
	r := rand.New(rand.NewPCG(seed, 3))
	base := u256.New(r.Uint64(), r.Uint64(), r.Uint64(), r.Uint64())
	client := puf.InjectNoise(base, base, d, r)
	return core.Task{
		Base:        base,
		Target:      core.HashSeed(alg, client),
		MaxDistance: maxD,
		Method:      iterseq.GrayCode,
	}, client
}

// dialRaw speaks the wire protocol by hand: dial, hello, welcome. It is
// the building block for misbehaving-worker tests.
func dialRaw(t *testing.T, addr string, hello *helloMsg) (net.Conn, *welcomeMsg) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeMsg(conn, kindHello, hello); err != nil {
		t.Fatal(err)
	}
	kind, msg, err := readMsg(conn)
	if err != nil {
		t.Fatalf("no welcome: %v", err)
	}
	if kind != kindWelcome {
		t.Fatalf("expected welcome, got kind %d", kind)
	}
	return conn, msg.(*welcomeMsg)
}

func TestClusterFindsSeed(t *testing.T) {
	coord, stop := startCluster(t, core.SHA3, []int{1, 2, 1})
	defer stop()
	task, client := clusterTask(core.SHA3, 1, 2, 2)
	res, err := coord.Search(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || !res.Seed.Equal(client) || res.Distance != 2 {
		t.Fatalf("cluster search failed: %+v", res)
	}
}

func TestClusterMatchesLocalBackend(t *testing.T) {
	coord, stop := startCluster(t, core.SHA1, []int{2, 2})
	defer stop()
	task, client := clusterTask(core.SHA1, 2, 2, 3)
	cres, err := coord.Search(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	local := &cpu.Backend{Alg: core.SHA1, Workers: 2}
	lres, err := local.Search(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	if cres.Found != lres.Found || !cres.Seed.Equal(lres.Seed) || cres.Distance != lres.Distance {
		t.Errorf("cluster %+v and local %+v disagree", cres, lres)
	}
	if !cres.Seed.Equal(client) {
		t.Error("wrong seed")
	}
}

func TestClusterExhaustiveCoverage(t *testing.T) {
	coord, stop := startCluster(t, core.SHA3, []int{1, 3})
	defer stop()
	task, _ := clusterTask(core.SHA3, 3, 1, 2)
	task.Exhaustive = true
	res, err := coord.Search(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	want := combin.ExhaustiveSeeds(256, 2).Uint64()
	if res.SeedsCovered != want {
		t.Errorf("covered %d, want u(2)=%d", res.SeedsCovered, want)
	}
	if !res.Found || res.Distance != 1 {
		t.Errorf("exhaustive lost the match: %+v", res)
	}
}

func TestClusterEarlyExitCancelsFleet(t *testing.T) {
	coord, stop := startCluster(t, core.SHA3, []int{1, 1, 1, 1})
	defer stop()
	// Match early in the shell: the fleet must stop well short of full
	// coverage (chunked cancellation bounds overshoot).
	task, _ := clusterTask(core.SHA3, 4, 2, 2)
	res, err := coord.Search(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	full := combin.ExhaustiveSeeds(256, 2).Uint64()
	if !res.Found {
		t.Fatal("match lost")
	}
	if res.SeedsCovered >= full {
		t.Errorf("early exit covered the whole space (%d)", res.SeedsCovered)
	}
}

func TestClusterNotFound(t *testing.T) {
	coord, stop := startCluster(t, core.SHA3, []int{2})
	defer stop()
	task, _ := clusterTask(core.SHA3, 5, 3, 2) // seed beyond radius
	res, err := coord.Search(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Error("found a seed outside the radius")
	}
}

func TestClusterNoWorkers(t *testing.T) {
	coord := &Coordinator{Alg: core.SHA3}
	task, _ := clusterTask(core.SHA3, 6, 1, 1)
	if _, err := coord.Search(context.Background(), task); err == nil {
		t.Error("search without workers succeeded")
	}
	if !coord.Degraded() {
		t.Error("empty fleet should report degraded")
	}
}

func TestClusterWeightedPartition(t *testing.T) {
	// A 3-core worker should get ~3x the seeds of a 1-core worker; verify
	// indirectly through exhaustive coverage staying exact.
	coord, stop := startCluster(t, core.SHA3, []int{3, 1})
	defer stop()
	task, _ := clusterTask(core.SHA3, 7, 2, 2)
	task.Exhaustive = true
	res, err := coord.Search(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	want := combin.ExhaustiveSeeds(256, 2).Uint64()
	if res.SeedsCovered != want {
		t.Errorf("weighted partition lost seeds: %d != %d", res.SeedsCovered, want)
	}
}

func TestClusterName(t *testing.T) {
	coord, stop := startCluster(t, core.SHA3, []int{1, 1})
	defer stop()
	if coord.Name() == "" {
		t.Error("empty name")
	}
	n, cores := coord.Workers()
	if n != 2 || cores != 2 {
		t.Errorf("Workers() = %d, %d", n, cores)
	}
}

// TestClusterWorkerDeathRedispatches is the new contract replacing the
// seed repo's TestClusterWorkerDisconnectSurfacesError: a worker dying
// mid-shell no longer fails the search — its range is re-dispatched to
// the survivors and the result stays exact.
func TestClusterWorkerDeathRedispatches(t *testing.T) {
	reg := obs.NewRegistry()
	coord, ln, stop := startClusterCfg(t, Config{Alg: core.SHA3, Metrics: reg}, []int{2})
	defer stop()

	// A worker that dies right after accepting its first job.
	conn, welcome := dialRaw(t, ln.Addr().String(), &helloMsg{Proto: ProtoVersion, Cores: 1, Name: "flaky"})
	if !welcome.Accept {
		t.Fatalf("flaky worker rejected: %s", welcome.Reason)
	}
	go func() {
		for {
			kind, _, err := readMsg(conn)
			if err != nil {
				return
			}
			if kind == kindJob {
				conn.Close() // die without answering
				return
			}
		}
	}()
	if err := coord.WaitForWorkers(2, 2*time.Second); err != nil {
		t.Fatal(err)
	}

	task, client := clusterTask(core.SHA3, 8, 2, 2)
	task.Exhaustive = true
	res, err := coord.Search(context.Background(), task)
	if err != nil {
		t.Fatalf("worker death failed the search: %v", err)
	}
	if !res.Found || !res.Seed.Equal(client) {
		t.Fatalf("redispatch lost the seed: %+v", res)
	}
	want := combin.ExhaustiveSeeds(256, 2).Uint64()
	if res.SeedsCovered != want {
		t.Errorf("redispatch double- or under-counted: covered %d, want %d", res.SeedsCovered, want)
	}
	st := coord.Stats()
	if st.Deaths == 0 || st.Redispatches == 0 {
		t.Errorf("stats missed the death/redispatch: %+v", st)
	}
	snap := reg.Snapshot()
	if v, ok := snap["cluster_worker_deaths"].(uint64); !ok || v == 0 {
		t.Errorf("cluster_worker_deaths metric = %v", snap["cluster_worker_deaths"])
	}
	if v, ok := snap["cluster_redispatches"].(uint64); !ok || v == 0 {
		t.Errorf("cluster_redispatches metric = %v", snap["cluster_redispatches"])
	}
	if h, ok := snap["cluster_redispatch_latency_seconds"].(obs.HistogramSnapshot); !ok || h.Count == 0 {
		t.Errorf("cluster_redispatch_latency_seconds histogram = %v", snap["cluster_redispatch_latency_seconds"])
	}
}

func TestClusterWorkerDeathNoSurvivorsFails(t *testing.T) {
	coord := NewCoordinator(Config{Alg: core.SHA3})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go coord.Serve(ln)
	defer coord.Close()

	conn, _ := dialRaw(t, ln.Addr().String(), &helloMsg{Proto: ProtoVersion, Cores: 1, Name: "flaky"})
	go func() {
		for {
			kind, _, err := readMsg(conn)
			if err != nil {
				return
			}
			if kind == kindJob {
				conn.Close()
				return
			}
		}
	}()
	if err := coord.WaitForWorkers(1, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	task, _ := clusterTask(core.SHA3, 8, 1, 1)
	if _, err := coord.Search(context.Background(), task); err == nil {
		t.Error("expected an error: sole worker died and no fallback is configured")
	}
}

func TestClusterFallbackWhenFleetEmpty(t *testing.T) {
	reg := obs.NewRegistry()
	coord := NewCoordinator(Config{
		Alg:      core.SHA3,
		Fallback: &cpu.Backend{Alg: core.SHA3, Workers: 2},
		Metrics:  reg,
	})
	defer coord.Close()
	task, client := clusterTask(core.SHA3, 11, 2, 2)
	res, err := coord.Search(context.Background(), task)
	if err != nil {
		t.Fatalf("degraded search failed: %v", err)
	}
	if !res.Found || !res.Seed.Equal(client) {
		t.Fatalf("fallback lost the seed: %+v", res)
	}
	if st := coord.Stats(); st.Fallbacks == 0 || !st.Degraded {
		t.Errorf("fallback not accounted: %+v", st)
	}
	snap := reg.Snapshot()
	if v, ok := snap["cluster_fallbacks"].(uint64); !ok || v == 0 {
		t.Errorf("cluster_fallbacks metric = %v", snap["cluster_fallbacks"])
	}
}

func TestClusterFallbackMidShell(t *testing.T) {
	// The sole worker dies mid-shell; with a fallback configured the
	// coordinator finishes the dead range on its own cores.
	coord := NewCoordinator(Config{
		Alg:      core.SHA3,
		Fallback: &cpu.Backend{Alg: core.SHA3},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go coord.Serve(ln)
	defer coord.Close()

	conn, _ := dialRaw(t, ln.Addr().String(), &helloMsg{Proto: ProtoVersion, Cores: 1, Name: "flaky"})
	go func() {
		for {
			kind, _, err := readMsg(conn)
			if err != nil {
				return
			}
			if kind == kindJob {
				conn.Close()
				return
			}
		}
	}()
	if err := coord.WaitForWorkers(1, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	task, client := clusterTask(core.SHA3, 12, 2, 2)
	task.Exhaustive = true
	res, err := coord.Search(context.Background(), task)
	if err != nil {
		t.Fatalf("mid-shell fallback failed: %v", err)
	}
	if !res.Found || !res.Seed.Equal(client) {
		t.Fatalf("mid-shell fallback lost the seed: %+v", res)
	}
	want := combin.ExhaustiveSeeds(256, 2).Uint64()
	if res.SeedsCovered != want {
		t.Errorf("mid-shell fallback coverage %d, want %d", res.SeedsCovered, want)
	}
	if st := coord.Stats(); st.Fallbacks == 0 {
		t.Errorf("fallback not counted: %+v", st)
	}
}

func TestClusterWorkerRejoins(t *testing.T) {
	coord, ln, stop := startClusterCfg(t, Config{Alg: core.SHA3}, nil)
	defer stop()
	w := &Worker{Cores: 1, Name: "phoenix"}
	workerStop := make(chan struct{})
	defer close(workerStop)
	go RunWorkerUntilBackoff(ln.Addr().String(), w, workerStop, 10*time.Millisecond)
	if err := coord.WaitForWorkers(1, 2*time.Second); err != nil {
		t.Fatal(err)
	}

	// Kill the worker's connection; RunWorkerUntilBackoff reconnects.
	coord.mu.Lock()
	victim := coord.workers[0]
	coord.mu.Unlock()
	victim.conn.Close()

	deadline := time.Now().Add(5 * time.Second)
	for coord.Stats().Rejoins == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("worker never rejoined: %+v", coord.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := coord.Stats()
	if st.Deaths == 0 {
		t.Errorf("death not counted before rejoin: %+v", st)
	}
	if err := coord.WaitForWorkers(1, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	// The rejoined worker serves searches again.
	task, client := clusterTask(core.SHA3, 13, 1, 1)
	res, err := coord.Search(context.Background(), task)
	if err != nil || !res.Found || !res.Seed.Equal(client) {
		t.Fatalf("search after rejoin: res=%+v err=%v", res, err)
	}
}

func TestClusterHeartbeatTimeoutReapsSilentWorker(t *testing.T) {
	// The zombie never pings, so any finite timeout reaps it; the timeout
	// stays generous relative to the interval so a race-detector-slowed
	// ping never reaps the healthy worker alongside it.
	coord, ln, stop := startClusterCfg(t, Config{
		Alg:               core.SHA3,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  500 * time.Millisecond,
	}, []int{2})
	defer stop()

	// A worker that handshakes, accepts its job, then goes silent without
	// closing its connection — only the heartbeat timeout can catch it.
	conn, welcome := dialRaw(t, ln.Addr().String(), &helloMsg{Proto: ProtoVersion, Cores: 1, Name: "zombie"})
	if welcome.HeartbeatMillis != 20 {
		t.Fatalf("welcome heartbeat = %d ms, want 20", welcome.HeartbeatMillis)
	}
	defer conn.Close()
	go func() {
		for {
			if _, _, err := readMsg(conn); err != nil {
				return
			}
			// Swallow jobs and cancels; never answer, never ping.
		}
	}()
	if err := coord.WaitForWorkers(2, 2*time.Second); err != nil {
		t.Fatal(err)
	}

	task, client := clusterTask(core.SHA3, 14, 2, 2)
	task.Exhaustive = true
	res, err := coord.Search(context.Background(), task)
	if err != nil {
		t.Fatalf("silent worker failed the search: %v", err)
	}
	if !res.Found || !res.Seed.Equal(client) {
		t.Fatalf("heartbeat redispatch lost the seed: %+v", res)
	}
	want := combin.ExhaustiveSeeds(256, 2).Uint64()
	if res.SeedsCovered != want {
		t.Errorf("coverage %d, want %d", res.SeedsCovered, want)
	}
	if st := coord.Stats(); st.Deaths == 0 || st.Redispatches == 0 {
		t.Errorf("zombie not reaped: %+v", st)
	}
}

func TestClusterProtoVersionMismatchCoordinatorSide(t *testing.T) {
	coord, ln, stop := startClusterCfg(t, Config{Alg: core.SHA3}, nil)
	defer stop()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeMsg(conn, kindHello, &helloMsg{Proto: ProtoVersion + 7, Cores: 4, Name: "future"}); err != nil {
		t.Fatal(err)
	}
	kind, msg, err := readMsg(conn)
	if err != nil || kind != kindWelcome {
		t.Fatalf("expected welcome rejection, got kind=%d err=%v", kind, err)
	}
	welcome := msg.(*welcomeMsg)
	if welcome.Accept {
		t.Fatal("mismatched version was accepted")
	}
	if welcome.Proto != ProtoVersion {
		t.Errorf("welcome.Proto = %d, want %d", welcome.Proto, ProtoVersion)
	}
	if !strings.Contains(welcome.Reason, "version mismatch") {
		t.Errorf("reason %q does not name the version mismatch", welcome.Reason)
	}
	if n, _ := coord.Workers(); n != 0 {
		t.Errorf("mismatched worker joined the pool (%d workers)", n)
	}
	if st := coord.Stats(); st.ProtoRejects == 0 {
		t.Errorf("proto reject not counted: %+v", st)
	}
}

func TestClusterProtoVersionMismatchWorkerSide(t *testing.T) {
	// A fake coordinator that answers hellos with a different version.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		readMsg(conn) // swallow the hello
		writeMsg(conn, kindWelcome, &welcomeMsg{Proto: ProtoVersion + 1, Accept: true})
		// Leave the connection open: the worker must bail on version alone.
	}()
	w := &Worker{Cores: 1, Name: "w"}
	err = w.Run(ln.Addr().String())
	if !errors.Is(err, ErrProtoVersion) {
		t.Fatalf("worker got %v, want ErrProtoVersion", err)
	}
}

func TestClusterSkipsWorkersLackingMethod(t *testing.T) {
	coord, ln, stop := startClusterCfg(t, Config{Alg: core.SHA3}, nil)
	defer stop()
	// grayOnly cannot run Gosper jobs; allRounder can run anything.
	grayOnly := &Worker{Cores: 4, Name: "gray-only", Methods: []iterseq.Method{iterseq.GrayCode}}
	allRounder := &Worker{Cores: 1, Name: "all-rounder"}
	for _, w := range []*Worker{grayOnly, allRounder} {
		stopW := make(chan struct{})
		defer close(stopW)
		go RunWorkerUntil(ln.Addr().String(), w, stopW)
	}
	if err := coord.WaitForWorkers(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	task, client := clusterTask(core.SHA3, 15, 2, 2)
	task.Method = iterseq.Gosper
	task.Exhaustive = true
	res, err := coord.Search(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || !res.Seed.Equal(client) {
		t.Fatalf("capability-filtered search lost the seed: %+v", res)
	}
	want := combin.ExhaustiveSeeds(256, 2).Uint64()
	if res.SeedsCovered != want {
		t.Errorf("coverage %d, want %d (only all-rounder should have served)", res.SeedsCovered, want)
	}
}

func TestClusterNoWorkerSupportsMethod(t *testing.T) {
	coord, ln, stop := startClusterCfg(t, Config{Alg: core.SHA3}, nil)
	defer stop()
	w := &Worker{Cores: 1, Name: "gray-only", Methods: []iterseq.Method{iterseq.GrayCode}}
	stopW := make(chan struct{})
	defer close(stopW)
	go RunWorkerUntil(ln.Addr().String(), w, stopW)
	if err := coord.WaitForWorkers(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	task, _ := clusterTask(core.SHA3, 16, 1, 1)
	task.Method = iterseq.Alg515
	if _, err := coord.Search(context.Background(), task); err == nil {
		t.Error("search succeeded with no method-capable worker and no fallback")
	}
}

func TestClusterSearchAfterCloseFails(t *testing.T) {
	coord, _, stop := startClusterCfg(t, Config{Alg: core.SHA3}, []int{1})
	stop()
	task, _ := clusterTask(core.SHA3, 17, 1, 1)
	if _, err := coord.Search(context.Background(), task); !errors.Is(err, ErrClosed) {
		t.Errorf("Search after Close = %v, want ErrClosed", err)
	}
}

func TestClusterCheckIntervalPassthrough(t *testing.T) {
	// A large check interval must not change the result, only the
	// early-exit lag.
	coord, stop := startCluster(t, core.SHA3, []int{2})
	defer stop()
	task, client := clusterTask(core.SHA3, 9, 2, 2)
	task.CheckInterval = 64
	res, err := coord.Search(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || !res.Seed.Equal(client) {
		t.Fatalf("interval 64 lost the match: %+v", res)
	}
}

func TestClusterShellStats(t *testing.T) {
	coord, stop := startCluster(t, core.SHA3, []int{2})
	defer stop()
	task, _ := clusterTask(core.SHA3, 10, 1, 2)
	task.Exhaustive = true
	res, err := coord.Search(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shells) != 2 || res.Shells[0].Distance != 1 || res.Shells[1].Distance != 2 {
		t.Errorf("shell stats wrong: %+v", res.Shells)
	}
	var covered uint64
	for _, sh := range res.Shells {
		covered += sh.SeedsCovered
	}
	if covered+1 != res.SeedsCovered {
		t.Errorf("shell coverage %d+1 != total %d", covered, res.SeedsCovered)
	}
}
