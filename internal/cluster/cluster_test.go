package cluster

import (
	"context"
	"math/rand/v2"
	"net"
	"testing"
	"time"

	"rbcsalted/internal/combin"
	"rbcsalted/internal/core"
	"rbcsalted/internal/cpu"
	"rbcsalted/internal/iterseq"
	"rbcsalted/internal/puf"
	"rbcsalted/internal/u256"
)

func startCluster(t *testing.T, alg core.HashAlg, workerCores []int) (*Coordinator, func()) {
	t.Helper()
	coord := &Coordinator{Alg: alg}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go coord.Serve(ln)
	stops := make([]chan struct{}, 0, len(workerCores))
	for i, cores := range workerCores {
		w := &Worker{Cores: cores, Name: string(rune('a' + i))}
		stop := make(chan struct{})
		stops = append(stops, stop)
		go RunWorkerUntil(ln.Addr().String(), w, stop)
	}
	if err := coord.WaitForWorkers(len(workerCores), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	return coord, func() {
		for _, s := range stops {
			close(s)
		}
		coord.Close()
	}
}

func clusterTask(alg core.HashAlg, seed uint64, d, maxD int) (core.Task, u256.Uint256) {
	r := rand.New(rand.NewPCG(seed, 3))
	base := u256.New(r.Uint64(), r.Uint64(), r.Uint64(), r.Uint64())
	client := puf.InjectNoise(base, base, d, r)
	return core.Task{
		Base:        base,
		Target:      core.HashSeed(alg, client),
		MaxDistance: maxD,
		Method:      iterseq.GrayCode,
	}, client
}

func TestClusterFindsSeed(t *testing.T) {
	coord, stop := startCluster(t, core.SHA3, []int{1, 2, 1})
	defer stop()
	task, client := clusterTask(core.SHA3, 1, 2, 2)
	res, err := coord.Search(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || !res.Seed.Equal(client) || res.Distance != 2 {
		t.Fatalf("cluster search failed: %+v", res)
	}
}

func TestClusterMatchesLocalBackend(t *testing.T) {
	coord, stop := startCluster(t, core.SHA1, []int{2, 2})
	defer stop()
	task, client := clusterTask(core.SHA1, 2, 2, 3)
	cres, err := coord.Search(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	local := &cpu.Backend{Alg: core.SHA1, Workers: 2}
	lres, err := local.Search(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	if cres.Found != lres.Found || !cres.Seed.Equal(lres.Seed) || cres.Distance != lres.Distance {
		t.Errorf("cluster %+v and local %+v disagree", cres, lres)
	}
	if !cres.Seed.Equal(client) {
		t.Error("wrong seed")
	}
}

func TestClusterExhaustiveCoverage(t *testing.T) {
	coord, stop := startCluster(t, core.SHA3, []int{1, 3})
	defer stop()
	task, _ := clusterTask(core.SHA3, 3, 1, 2)
	task.Exhaustive = true
	res, err := coord.Search(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	want := combin.ExhaustiveSeeds(256, 2).Uint64()
	if res.SeedsCovered != want {
		t.Errorf("covered %d, want u(2)=%d", res.SeedsCovered, want)
	}
	if !res.Found || res.Distance != 1 {
		t.Errorf("exhaustive lost the match: %+v", res)
	}
}

func TestClusterEarlyExitCancelsFleet(t *testing.T) {
	coord, stop := startCluster(t, core.SHA3, []int{1, 1, 1, 1})
	defer stop()
	// Match early in the shell: the fleet must stop well short of full
	// coverage (chunked cancellation bounds overshoot).
	task, _ := clusterTask(core.SHA3, 4, 2, 2)
	res, err := coord.Search(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	full := combin.ExhaustiveSeeds(256, 2).Uint64()
	if !res.Found {
		t.Fatal("match lost")
	}
	if res.SeedsCovered >= full {
		t.Errorf("early exit covered the whole space (%d)", res.SeedsCovered)
	}
}

func TestClusterNotFound(t *testing.T) {
	coord, stop := startCluster(t, core.SHA3, []int{2})
	defer stop()
	task, _ := clusterTask(core.SHA3, 5, 3, 2) // seed beyond radius
	res, err := coord.Search(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Error("found a seed outside the radius")
	}
}

func TestClusterNoWorkers(t *testing.T) {
	coord := &Coordinator{Alg: core.SHA3}
	task, _ := clusterTask(core.SHA3, 6, 1, 1)
	if _, err := coord.Search(context.Background(), task); err == nil {
		t.Error("search without workers succeeded")
	}
}

func TestClusterWeightedPartition(t *testing.T) {
	// A 3-core worker should get ~3x the seeds of a 1-core worker; verify
	// indirectly through exhaustive coverage staying exact.
	coord, stop := startCluster(t, core.SHA3, []int{3, 1})
	defer stop()
	task, _ := clusterTask(core.SHA3, 7, 2, 2)
	task.Exhaustive = true
	res, err := coord.Search(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	want := combin.ExhaustiveSeeds(256, 2).Uint64()
	if res.SeedsCovered != want {
		t.Errorf("weighted partition lost seeds: %d != %d", res.SeedsCovered, want)
	}
}

func TestClusterName(t *testing.T) {
	coord, stop := startCluster(t, core.SHA3, []int{1, 1})
	defer stop()
	if coord.Name() == "" {
		t.Error("empty name")
	}
	n, cores := coord.Workers()
	if n != 2 || cores != 2 {
		t.Errorf("Workers() = %d, %d", n, cores)
	}
}

func TestClusterWorkerDisconnectSurfacesError(t *testing.T) {
	coord := &Coordinator{Alg: core.SHA3}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go coord.Serve(ln)
	defer coord.Close()

	// A worker that dies right after accepting its first job.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := writeMsg(conn, kindHello, &helloMsg{Cores: 1, Name: "flaky"}); err != nil {
		t.Fatal(err)
	}
	go func() {
		readMsg(conn) // receive the job
		conn.Close()  // die without answering
	}()
	if err := coord.WaitForWorkers(1, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	task, _ := clusterTask(core.SHA3, 8, 1, 1)
	if _, err := coord.Search(context.Background(), task); err == nil {
		t.Error("expected an error after worker death")
	}
}

func TestClusterCheckIntervalPassthrough(t *testing.T) {
	// A large check interval must not change the result, only the
	// early-exit lag.
	coord, stop := startCluster(t, core.SHA3, []int{2})
	defer stop()
	task, client := clusterTask(core.SHA3, 9, 2, 2)
	task.CheckInterval = 64
	res, err := coord.Search(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || !res.Seed.Equal(client) {
		t.Fatalf("interval 64 lost the match: %+v", res)
	}
}

func TestClusterShellStats(t *testing.T) {
	coord, stop := startCluster(t, core.SHA3, []int{2})
	defer stop()
	task, _ := clusterTask(core.SHA3, 10, 1, 2)
	task.Exhaustive = true
	res, err := coord.Search(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shells) != 2 || res.Shells[0].Distance != 1 || res.Shells[1].Distance != 2 {
		t.Errorf("shell stats wrong: %+v", res.Shells)
	}
	var covered uint64
	for _, sh := range res.Shells {
		covered += sh.SeedsCovered
	}
	if covered+1 != res.SeedsCovered {
		t.Errorf("shell coverage %d+1 != total %d", covered, res.SeedsCovered)
	}
}
