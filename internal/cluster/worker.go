package cluster

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rbcsalted/internal/core"
	"rbcsalted/internal/iterseq"
	"rbcsalted/internal/u256"
)

// Worker executes shell ranges for a coordinator using this machine's
// cores.
type Worker struct {
	// Cores advertises capacity for weighted partitioning; 0 means
	// GOMAXPROCS.
	Cores int
	// Name labels the worker in coordinator logs.
	Name string
	// Methods restricts the seed-iteration methods this worker offers to
	// the coordinator; nil or empty advertises every implemented method.
	// The coordinator never assigns a job whose iterator the worker did
	// not advertise.
	Methods []iterseq.Method

	mu      sync.Mutex
	cancels map[uint64]*cancelState

	// chunkHook, when non-nil, runs between ChunkSeeds slices. Tests use
	// it to stretch searches so faults land mid-job.
	chunkHook func()
}

// cancelState carries a job's two stop conditions: soft is the FOUND
// broadcast (early-exit semantics), hard is a coordinator-side context
// cancellation that stops even exhaustive jobs.
type cancelState struct {
	soft atomic.Bool
	hard atomic.Bool
}

// Run connects to the coordinator and serves jobs until the connection
// closes. It returns nil on orderly shutdown and ErrProtoVersion when
// the coordinator speaks a different protocol version.
func (w *Worker) Run(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("cluster: worker dial: %w", err)
	}
	defer conn.Close()
	return w.Serve(conn)
}

// methodCaps flattens the advertised method set for the hello message.
func (w *Worker) methodCaps() []int {
	src := w.Methods
	if len(src) == 0 {
		src = iterseq.Methods()
	}
	caps := make([]int, len(src))
	for i, m := range src {
		caps[i] = int(m)
	}
	return caps
}

// Serve runs the worker protocol over an established connection: hello,
// welcome (version + heartbeat negotiation), then jobs until the
// connection closes.
func (w *Worker) Serve(conn net.Conn) error {
	cores := w.Cores
	if cores <= 0 {
		cores = runtime.GOMAXPROCS(0)
	}
	hello := &helloMsg{
		Proto:   ProtoVersion,
		Cores:   cores,
		Name:    w.Name,
		Methods: w.methodCaps(),
	}
	if err := writeMsg(conn, kindHello, hello); err != nil {
		return err
	}

	// The welcome closes version negotiation: a mismatched or rejecting
	// coordinator yields the typed error instead of a gob failure on
	// whatever frame would have come next.
	kind, msg, err := readMsg(conn)
	if err != nil {
		return fmt.Errorf("cluster: worker handshake: %w", err)
	}
	if kind != kindWelcome {
		return fmt.Errorf("%w: coordinator answered hello with message kind %d (pre-versioning coordinator?)", ErrProtoVersion, kind)
	}
	welcome := msg.(*welcomeMsg)
	if welcome.Proto != ProtoVersion {
		return fmt.Errorf("%w: worker speaks v%d, coordinator v%d", ErrProtoVersion, ProtoVersion, welcome.Proto)
	}
	if !welcome.Accept {
		return fmt.Errorf("cluster: coordinator rejected worker: %s", welcome.Reason)
	}

	w.mu.Lock()
	w.cancels = make(map[uint64]*cancelState)
	w.mu.Unlock()

	var writeMu sync.Mutex
	send := func(kind byte, v any) error {
		writeMu.Lock()
		defer writeMu.Unlock()
		return writeMsg(conn, kind, v)
	}

	// Heartbeats at the coordinator's requested cadence prove liveness
	// between shells; a send failure means the connection is gone and the
	// read loop is about to find out.
	stopBeat := make(chan struct{})
	defer close(stopBeat)
	if welcome.HeartbeatMillis > 0 {
		interval := time.Duration(welcome.HeartbeatMillis) * time.Millisecond
		go func() {
			t := time.NewTicker(interval)
			defer t.Stop()
			seq := uint64(0)
			for {
				select {
				case <-stopBeat:
					return
				case <-t.C:
					seq++
					if send(kindPing, &pingMsg{Seq: seq}) != nil {
						return
					}
				}
			}
		}()
	}

	for {
		kind, msg, err := readMsg(conn)
		if err != nil {
			return nil // connection closed: orderly shutdown
		}
		switch kind {
		case kindJob:
			job := msg.(*jobMsg)
			ctl := &cancelState{}
			w.mu.Lock()
			w.cancels[job.ID] = ctl
			w.mu.Unlock()
			go func() {
				done := w.run(job, cores, ctl)
				w.mu.Lock()
				delete(w.cancels, job.ID)
				w.mu.Unlock()
				_ = send(kindDone, done)
			}()
		case kindCancel:
			c := msg.(*cancelMsg)
			w.mu.Lock()
			if ctl, ok := w.cancels[c.ID]; ok {
				ctl.soft.Store(true)
				if c.Hard {
					ctl.hard.Store(true)
				}
			}
			w.mu.Unlock()
		case kindPing:
			// Coordinator-side keepalive probe; liveness is implied by the
			// TCP stream, nothing to do.
		default:
			return fmt.Errorf("cluster: worker got unexpected message kind %d", kind)
		}
	}
}

// run executes one job in ChunkSeeds slices, polling the cancel flags
// between slices — a hard cancel bounds cluster-wide stop latency to one
// chunk per worker.
func (w *Worker) run(job *jobMsg, cores int, ctl *cancelState) *doneMsg {
	base := u256.FromBytes(job.Base)
	target, err := core.DigestFromBytes(core.HashAlg(job.Alg), job.Target)
	if err != nil {
		return &doneMsg{ID: job.ID, Err: err.Error()}
	}
	newMatcher := core.HashMatcherFactory(core.HashAlg(job.Alg), target)

	out := &doneMsg{ID: job.ID}
	for off := uint64(0); off < job.Count; off += ChunkSeeds {
		if ctl.hard.Load() || (ctl.soft.Load() && !job.Exhaustive) {
			break
		}
		if w.chunkHook != nil {
			w.chunkHook()
		}
		chunk := min64(ChunkSeeds, job.Count-off)
		found, seed, covered, err := searchRange(
			base, job.Distance, iterseq.Method(job.Method),
			job.StartRank+off, chunk, cores, job.CheckInterval,
			job.Exhaustive, newMatcher)
		if err != nil {
			out.Err = err.Error()
			return out
		}
		out.Covered += covered
		if found && !out.Found {
			out.Found = true
			out.Seed = seed.Bytes()
			if !job.Exhaustive {
				break
			}
		}
	}
	return out
}

// searchRange covers [startRank, startRank+count) of one shell with the
// same real execution engine as the single-node backend (including the
// 64-wide bit-sliced batch matcher), split over the worker's cores.
func searchRange(base u256.Uint256, d int, method iterseq.Method, startRank, count uint64, cores, checkInterval int, exhaustive bool, newMatcher core.MatcherFactory) (bool, u256.Uint256, uint64, error) {
	found, seed, covered, _, err := core.SearchRangeHost(
		nil, base, d, method, startRank, count, cores, checkInterval,
		exhaustive, time.Time{}, newMatcher)
	return found, seed, covered, err
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// RunWorkerUntil keeps a worker connected, retrying until stop closes.
// It is a convenience for long-lived worker processes; after a dropped
// connection the worker rejoins the coordinator's pool automatically.
// A protocol-version mismatch is permanent for this binary, so the loop
// gives up instead of hammering an incompatible coordinator.
func RunWorkerUntil(addr string, w *Worker, stop <-chan struct{}) {
	RunWorkerUntilBackoff(addr, w, stop, time.Second)
}

// RunWorkerUntilBackoff is RunWorkerUntil with a configurable reconnect
// delay (tests use a short one to exercise rejoin quickly).
func RunWorkerUntilBackoff(addr string, w *Worker, stop <-chan struct{}, delay time.Duration) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		if err := w.Run(addr); errors.Is(err, ErrProtoVersion) {
			return
		}
		select {
		case <-stop:
			return
		case <-time.After(delay):
		}
	}
}
