package apusim

import (
	"context"
	"math/rand/v2"
	"testing"

	"rbcsalted/internal/core"
	"rbcsalted/internal/device"
	"rbcsalted/internal/iterseq"
	"rbcsalted/internal/puf"
	"rbcsalted/internal/u256"
)

func randSeed(r *rand.Rand) u256.Uint256 {
	return u256.New(r.Uint64(), r.Uint64(), r.Uint64(), r.Uint64())
}

func taskFor(alg core.HashAlg, base, client u256.Uint256, maxD int, method iterseq.Method) core.Task {
	oracle := client
	return core.Task{
		Base:        base,
		Target:      core.HashSeed(alg, client),
		MaxDistance: maxD,
		Method:      method,
		Oracle:      &oracle,
	}
}

func rel(got, want float64) float64 {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d / want
}

func TestPECounts(t *testing.T) {
	if got := NewBackend(Config{Alg: core.SHA1}).PEs(); got != 65536 {
		t.Errorf("SHA-1 PEs = %d, want 65536", got)
	}
	if got := NewBackend(Config{Alg: core.SHA3}).PEs(); got != 26176 {
		t.Errorf("SHA-3 PEs = %d, want 26176", got)
	}
}

func TestGateModelDiagnostics(t *testing.T) {
	for _, alg := range core.HashAlgs() {
		b := NewBackend(Config{Alg: alg})
		if b.GatesPerSeed() <= 0 {
			t.Errorf("%s: no gates measured", alg)
		}
		cpg := b.CyclesPerGate()
		if cpg <= 0 {
			t.Errorf("%s: cycles per gate %f", alg, cpg)
		}
		t.Logf("%s: %.0f gates/seed, %.1f cycles/gate, %d PEs",
			alg, b.GatesPerSeed(), cpg, b.PEs())
	}
	// SHA-3's spill penalty: more cycles per gate than SHA-1.
	s1 := NewBackend(Config{Alg: core.SHA1}).CyclesPerGate()
	s3 := NewBackend(Config{Alg: core.SHA3}).CyclesPerGate()
	if s3 <= s1 {
		t.Errorf("SHA-3 cycles/gate (%.1f) should exceed SHA-1's (%.1f)", s3, s1)
	}
}

func TestSearchFindsSeedBitslicedExecution(t *testing.T) {
	// d <= 2 runs for real through the bit-sliced gate engine.
	r := rand.New(rand.NewPCG(1, 1))
	for _, alg := range core.HashAlgs() {
		base := randSeed(r)
		client := puf.InjectNoise(base, base, 2, r)
		b := NewBackend(Config{Alg: alg})
		task := taskFor(alg, base, client, 2, iterseq.GrayCode)
		task.Oracle = nil // real execution must not need the oracle
		res, err := b.Search(context.Background(), task)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || !res.Seed.Equal(client) || res.Distance != 2 {
			t.Errorf("%s: %+v", alg, res)
		}
		if res.HashesExecuted < 256 {
			t.Errorf("%s: expected bit-sliced execution, hashed %d", alg, res.HashesExecuted)
		}
	}
}

func TestSearchFindsSeedPlannedD5(t *testing.T) {
	r := rand.New(rand.NewPCG(2, 2))
	base := randSeed(r)
	client := puf.InjectNoise(base, base, 5, r)
	b := NewBackend(Config{Alg: core.SHA3})
	res, err := b.Search(context.Background(), taskFor(core.SHA3, base, client, 5, iterseq.GrayCode))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || !res.Seed.Equal(client) || res.Distance != 5 {
		t.Fatalf("planned search failed: %+v", res)
	}
}

func TestAnchorExhaustiveD5(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 3))
	base := randSeed(r)
	client := puf.InjectNoise(base, base, 5, r)
	cases := []struct {
		alg  core.HashAlg
		want float64
	}{
		{core.SHA1, 1.62},
		{core.SHA3, 13.95},
	}
	for _, c := range cases {
		b := NewBackend(Config{Alg: c.alg})
		task := taskFor(c.alg, base, client, 5, iterseq.GrayCode)
		task.Exhaustive = true
		res, err := b.Search(context.Background(), task)
		if err != nil {
			t.Fatal(err)
		}
		if rel(res.DeviceSeconds, c.want) > 0.05 {
			t.Errorf("%s exhaustive d=5: modelled %.2fs, paper %.2fs",
				c.alg, res.DeviceSeconds, c.want)
		}
		t.Logf("%s exhaustive d=5: modelled %.2fs (paper %.2fs), %.0f J (paper %s)",
			c.alg, res.DeviceSeconds, c.want, res.EnergyJoules,
			map[core.HashAlg]string{core.SHA1: "124.43", core.SHA3: "974.06"}[c.alg])
	}
}

func TestEnergyMatchesTable6(t *testing.T) {
	r := rand.New(rand.NewPCG(4, 4))
	base := randSeed(r)
	client := puf.InjectNoise(base, base, 5, r)
	cases := []struct {
		alg    core.HashAlg
		joules float64
		peak   float64
	}{
		{core.SHA1, 124.43, 83.81},
		{core.SHA3, 974.06, 83.63},
	}
	for _, c := range cases {
		b := NewBackend(Config{Alg: c.alg})
		task := taskFor(c.alg, base, client, 5, iterseq.GrayCode)
		task.Exhaustive = true
		res, err := b.Search(context.Background(), task)
		if err != nil {
			t.Fatal(err)
		}
		if rel(res.EnergyJoules, c.joules) > 0.06 {
			t.Errorf("%s: %.1f J, paper %.1f J", c.alg, res.EnergyJoules, c.joules)
		}
		if res.PeakWatts != c.peak {
			t.Errorf("%s: peak %.2f W, paper %.2f W", c.alg, res.PeakWatts, c.peak)
		}
	}
}

// TestAPUEnergyAdvantageSHA1 pins the paper's headline: for SHA-1 the APU
// uses ~39% of the GPU's joules; for SHA-3 they are roughly equivalent.
func TestAPUEnergyAdvantageSHA1(t *testing.T) {
	apuSHA1 := device.PowerAPUSHA1.Energy(device.AnchorAPUSHA1Seconds)
	gpuSHA1 := device.PowerGPUSHA1.Energy(1.56)
	ratio := apuSHA1 / gpuSHA1
	if ratio < 0.35 || ratio > 0.45 {
		t.Errorf("APU/GPU SHA-1 energy ratio %.2f, paper ~0.39", ratio)
	}
	apuSHA3 := device.PowerAPUSHA3.Energy(device.AnchorAPUSHA3Seconds)
	gpuSHA3 := device.PowerGPUSHA3.Energy(4.67)
	r3 := apuSHA3 / gpuSHA3
	if r3 < 0.9 || r3 > 1.15 {
		t.Errorf("APU/GPU SHA-3 energy ratio %.2f, paper ~1.03", r3)
	}
}

func TestEarlyExitBatchBoundary(t *testing.T) {
	// Early exit must cover whole 256-seed batches per PE.
	r := rand.New(rand.NewPCG(5, 5))
	base := randSeed(r)
	client := puf.InjectNoise(base, base, 5, r)
	b := NewBackend(Config{Alg: core.SHA1})
	res, err := b.Search(context.Background(), taskFor(core.SHA1, base, client, 5, iterseq.GrayCode))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("match lost")
	}
	exh := taskFor(core.SHA1, base, client, 5, iterseq.GrayCode)
	exh.Exhaustive = true
	eres, err := b.Search(context.Background(), exh)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.DeviceSeconds < eres.DeviceSeconds) {
		t.Errorf("early exit %.2fs not faster than exhaustive %.2fs",
			res.DeviceSeconds, eres.DeviceSeconds)
	}
}

func TestOracleIsVerifiedNotTrusted(t *testing.T) {
	r := rand.New(rand.NewPCG(6, 6))
	base := randSeed(r)
	liar := puf.InjectNoise(base, base, 5, r)
	task := core.Task{
		Base:        base,
		Target:      core.HashSeed(core.SHA3, randSeed(r)),
		MaxDistance: 5,
		Method:      iterseq.GrayCode,
		Oracle:      &liar,
	}
	b := NewBackend(Config{Alg: core.SHA3})
	res, err := b.Search(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Error("backend trusted a lying oracle")
	}
}

func TestNameAndValidation(t *testing.T) {
	b := NewBackend(Config{Alg: core.SHA3})
	if b.Name() == "" {
		t.Error("empty name")
	}
	if _, err := b.Search(context.Background(), core.Task{MaxDistance: 11}); err == nil {
		t.Error("expected distance error")
	}
}

// TestMultiAPUScaling exercises the §5 future-work extension: up to 8
// APUs in one node, with scaling expected to beat the GPU's (lighter
// cross-device coordination).
func TestMultiAPUScaling(t *testing.T) {
	r := rand.New(rand.NewPCG(8, 8))
	base := randSeed(r)
	client := puf.InjectNoise(base, base, 5, r)
	run := func(devices int, exhaustive bool) float64 {
		b := NewBackend(Config{Alg: core.SHA3, Devices: devices})
		task := taskFor(core.SHA3, base, client, 5, iterseq.GrayCode)
		task.Exhaustive = exhaustive
		res, err := b.Search(context.Background(), task)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found {
			t.Fatal("match lost")
		}
		return res.DeviceSeconds
	}
	t1 := run(1, true)
	prev := t1
	for g := 2; g <= 8; g *= 2 {
		tg := run(g, true)
		if tg >= prev {
			t.Errorf("no speedup from %d devices: %.2fs >= %.2fs", g, tg, prev)
		}
		prev = tg
	}
	t8 := run(8, true)
	speedup := t1 / t8
	if speedup < 6.5 || speedup > 8 {
		t.Errorf("8-APU exhaustive speedup %.2f; expected near-linear", speedup)
	}
	t.Logf("multi-APU SHA-3 exhaustive: 1=%.2fs 8=%.2fs (%.2fx)", t1, t8, speedup)

	// Scaling at 3 devices should beat the GPU's 2.87x (the paper's
	// motivation for the 2U form factor).
	t3 := run(3, true)
	if s3 := t1 / t3; s3 <= 2.87 {
		t.Errorf("3-APU speedup %.2f not better than 3-GPU 2.87", s3)
	}
	// Energy scales with device count times (shorter) time.
	b8 := NewBackend(Config{Alg: core.SHA3, Devices: 8})
	task := taskFor(core.SHA3, base, client, 5, iterseq.GrayCode)
	task.Exhaustive = true
	res8, err := b8.Search(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	if res8.EnergyJoules < 900 || res8.EnergyJoules > 1200 {
		t.Errorf("8-APU energy %.0f J; expected near the single-APU total", res8.EnergyJoules)
	}
}

func TestTimeLimit(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 7))
	base := randSeed(r)
	task := core.Task{
		Base:        base,
		Target:      core.HashSeed(core.SHA3, randSeed(r)),
		MaxDistance: 5,
		Method:      iterseq.GrayCode,
		TimeLimit:   5 * 1e9, // 5s < the 13.95s full search
	}
	b := NewBackend(Config{Alg: core.SHA3})
	res, err := b.Search(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Errorf("expected timeout, modelled %.2fs", res.DeviceSeconds)
	}
}
