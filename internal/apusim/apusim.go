// Package apusim implements SALTED-APU (paper §3.3) as a simulated GSI
// Gemini associative processing unit: 4 cores x 16 banks x 2048 16-bit
// processors, with software-defined processing elements (2 bit processors
// per PE for SHA-1, 5 for SHA-3, giving the paper's 65k and 26k PEs),
// batch-of-256 seed permutation with early-exit checks between batches,
// and an in-memory-compute energy profile.
//
// The execution engine is real: shells within budget are hashed through
// the bit-sliced gate-level SHA-1/Keccak implementations in
// internal/bitslice - the software transpose of the APU's bit-serial
// associative compute - 64 seeds per batch, early exit only at batch
// boundaries, exactly as the hardware checks its flag. Gate counts from
// the executed batches drive the cycle model's compute term; the paper's
// Table 5 APU rows pin the absolute cycles-per-gate scale (two constants,
// one per hash, because SHA-3's working set spills beyond per-PE state
// memory).
package apusim

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rbcsalted/internal/bitslice"
	"rbcsalted/internal/combin"
	"rbcsalted/internal/core"
	"rbcsalted/internal/device"
	"rbcsalted/internal/iterseq"
	"rbcsalted/internal/u256"
)

// BatchSeeds is the number of seed permutations a PE generates per loaded
// startup combination; the early-exit flag is checked after each batch
// (paper §3.3).
const BatchSeeds = 256

// DefaultExecBudget fully executes shells up to 64Ki seeds through the
// bit-sliced engine; larger shells run a sampled validation and are
// planned analytically.
const DefaultExecBudget = 1 << 16

// Config assembles a SALTED-APU backend.
type Config struct {
	// Alg is the search hash.
	Alg core.HashAlg
	// Devices is the number of APUs in the node. The paper evaluates one
	// and proposes up to 8 per 2U node as future work (§5); values above
	// one exercise that extension. 0 means 1.
	Devices int
	// ExecBudget is the largest shell fully executed bit-sliced; 0 means
	// DefaultExecBudget.
	ExecBudget uint64
	// HostWorkers sets goroutines for real execution; 0 means GOMAXPROCS.
	HostWorkers int
}

// Multi-APU coordination constants (§5 extension). The APU checks its
// exit flag at 256-seed batch boundaries in associative memory, so
// cross-device coordination costs only host-side shell dispatch plus one
// batch of drain - lighter than the GPU's unified-memory traffic, which
// is why the paper expects better single-node scaling.
const (
	perDeviceShellSyncSeconds = 1.5e-3
	exitDrainSeconds          = 10e-3
)

// Backend is the simulated SALTED-APU engine.
type Backend struct {
	cfg Config
	// pes is the software-defined processing element count for the hash.
	pes int
	// cyclesPerSeed is the calibrated per-PE cost of one seed
	// (permutation + hash + compare) in APU clock cycles.
	cyclesPerSeed float64
	// gatesPerSeed is measured from the bit-sliced engine; it justifies
	// and decomposes cyclesPerSeed (see CyclesPerGate).
	gatesPerSeed float64
}

// NewBackend builds a calibrated backend.
func NewBackend(cfg Config) *Backend {
	if cfg.Devices == 0 {
		cfg.Devices = 1
	}
	if cfg.ExecBudget == 0 {
		cfg.ExecBudget = DefaultExecBudget
	}
	b := &Backend{cfg: cfg}
	bpsPerPE := device.APUBPsPerPESHA3
	anchor := device.AnchorAPUSHA3Seconds
	if cfg.Alg == core.SHA1 {
		bpsPerPE = device.APUBPsPerPESHA1
		anchor = device.AnchorAPUSHA1Seconds
	}
	b.pes = device.APUCores * device.APUBanksPerCore * (device.APUBPsPerBank / bpsPerPE)
	// Measure the real gate counts of one bit-sliced batch.
	var e bitslice.Engine
	var seeds [bitslice.Width][32]byte
	if cfg.Alg == core.SHA1 {
		e.SHA1Seeds(&seeds)
	} else {
		e.SHA3Seeds256(&seeds)
	}
	b.gatesPerSeed = float64(e.Counts().Total()) / bitslice.Width
	// Absolute scale: throughput anchor from Table 5.
	throughput := device.ExhaustiveSeedsD5 / anchor
	b.cyclesPerSeed = float64(b.pes) * device.GeminiAPU.ClockHz / throughput
	return b
}

// Name implements core.Backend.
func (b *Backend) Name() string {
	return fmt.Sprintf("SALTED-APU(%s, %dx%d PEs)", b.cfg.Alg, b.cfg.Devices, b.pes)
}

// PEs returns the software-defined processing element count.
func (b *Backend) PEs() int { return b.pes }

// GatesPerSeed returns the measured boolean-gate count per hashed seed.
func (b *Backend) GatesPerSeed() float64 { return b.gatesPerSeed }

// CyclesPerGate decomposes the calibrated per-seed cost against the
// measured gate count: cycles each bit processor spends per boolean gate,
// including associative-memory access. SHA-3's larger value reflects
// working-set spill beyond per-PE state memory.
func (b *Backend) CyclesPerGate() float64 {
	bpsPerPE := device.APUBPsPerPESHA3
	if b.cfg.Alg == core.SHA1 {
		bpsPerPE = device.APUBPsPerPESHA1
	}
	return b.cyclesPerSeed * float64(bpsPerPE) / b.gatesPerSeed
}

func (b *Backend) powerModel() (device.PowerModel, float64) {
	if b.cfg.Alg == core.SHA1 {
		return device.PowerAPUSHA1, device.PeakAPUSHA1
	}
	return device.PowerAPUSHA3, device.PeakAPUSHA3
}

// PredictCost implements core.CostModel: the expected device time and
// energy of the task under the calibrated cycle model, without touching
// the oracle. PEs progress in lockstep over equal shares, so an
// early-exit search prices the final shell at half each PE's share (the
// uniform-match expectation); every other shell is priced in full.
func (b *Backend) PredictCost(task core.Task) (core.Cost, error) {
	if task.MaxDistance < 0 || task.MaxDistance > 10 {
		return core.Cost{}, fmt.Errorf("apusim: MaxDistance %d outside supported range", task.MaxDistance)
	}
	var cycles, seconds float64
	if task.IncludeBase() {
		cycles += b.cyclesPerSeed
	}
	totalPEs := uint64(b.pes) * uint64(b.cfg.Devices)
	for d := task.StartShell(); d <= task.MaxDistance; d++ {
		size, ok := combin.Binomial64(256, d)
		if !ok {
			return core.Cost{}, fmt.Errorf("apusim: C(256,%d) overflows uint64", d)
		}
		perPE := (size + totalPEs - 1) / totalPEs
		cycles += float64(core.ExpectedShellCoverage(task, d, perPE)) * b.cyclesPerSeed
		if b.cfg.Devices > 1 {
			seconds += perDeviceShellSyncSeconds * float64(b.cfg.Devices)
		}
	}
	if !task.Exhaustive && b.cfg.Devices > 1 {
		seconds += exitDrainSeconds
	}
	seconds += cycles / device.GeminiAPU.ClockHz
	power, _ := b.powerModel()
	return core.Cost{
		Seconds: seconds,
		Joules:  power.Energy(seconds) * float64(b.cfg.Devices),
	}, nil
}

// Search implements core.Backend. Cancellation is polled at 256-seed
// batch boundaries in the bit-sliced execution paths — the same places
// the hardware checks its early-exit flag — and between shells in the
// analytic planner.
func (b *Backend) Search(ctx context.Context, task core.Task) (core.Result, error) {
	core.TraceSearchStart(task, b.Name())
	res, err := b.search(ctx, task)
	core.TraceSearchEnd(task, b.Name(), res, err)
	return res, err
}

func (b *Backend) search(ctx context.Context, task core.Task) (core.Result, error) {
	if task.MaxDistance < 0 || task.MaxDistance > 10 {
		return core.Result{}, fmt.Errorf("apusim: MaxDistance %d outside supported range", task.MaxDistance)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	var res core.Result
	var clock device.VirtualClock

	// The distance-0 base probe is skipped when MinDistance says the
	// caller already covered it.
	if task.IncludeBase() {
		res.HashesExecuted++
		res.SeedsCovered++
		clock.AdvanceCycles(b.cyclesPerSeed, device.GeminiAPU.ClockHz)
		if core.HashSeed(b.cfg.Alg, task.Base).Equal(task.Target) {
			res.Found = true
			res.Seed = task.Base
			res.Distance = 0
		}
	}

	if !(res.Found && !task.Exhaustive) {
		for d := task.StartShell(); d <= task.MaxDistance; d++ {
			if ctx.Err() != nil {
				res.DeviceSeconds = clock.Seconds()
				res.WallSeconds = time.Since(start).Seconds()
				return res, ctx.Err()
			}
			before := clock.Seconds()
			coveredBefore := res.SeedsCovered
			done, err := b.searchShell(ctx, task, d, &res, &clock)
			if err != nil {
				if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					res.DeviceSeconds = clock.Seconds()
					res.WallSeconds = time.Since(start).Seconds()
					return res, err
				}
				return core.Result{}, err
			}
			st := core.ShellStat{
				Distance:      d,
				SeedsCovered:  res.SeedsCovered - coveredBefore,
				DeviceSeconds: clock.Seconds() - before,
			}
			res.Shells = append(res.Shells, st)
			core.TraceShell(task, b.Name(), st)
			if done {
				break
			}
			if task.TimeLimit > 0 && clock.Seconds() > task.TimeLimit.Seconds() {
				res.TimedOut = true
				break
			}
		}
	}

	res.DeviceSeconds = clock.Seconds()
	if task.TimeLimit > 0 && res.DeviceSeconds > task.TimeLimit.Seconds() {
		res.TimedOut = true
	}
	power, peak := b.powerModel()
	res.EnergyJoules = power.Energy(res.DeviceSeconds) * float64(b.cfg.Devices)
	res.PeakWatts = peak * float64(b.cfg.Devices)
	res.WallSeconds = time.Since(start).Seconds()
	return res, nil
}

func (b *Backend) searchShell(ctx context.Context, task core.Task, d int, res *core.Result, clock *device.VirtualClock) (bool, error) {
	size, ok := combin.Binomial64(256, d)
	if !ok {
		return false, fmt.Errorf("apusim: C(256,%d) overflows uint64", d)
	}

	var matched bool
	var seed u256.Uint256

	if size <= b.cfg.ExecBudget {
		f, s, hashed, err := b.executeShellBitsliced(ctx, task, d)
		res.HashesExecuted += hashed
		if err != nil {
			res.SeedsCovered += hashed
			return false, err
		}
		matched, seed = f, s
	} else {
		// Analytic planning: verify the oracle by hashing, plus execute a
		// validation sample of real bit-sliced batches.
		if task.Oracle != nil && core.MatchShell(task.Base, *task.Oracle) == d {
			res.HashesExecuted++
			if core.HashSeed(b.cfg.Alg, *task.Oracle).Equal(task.Target) {
				matched = true
				seed = *task.Oracle
			}
		}
		f, s, hashed, err := b.executeSample(task, d, 8*bitslice.Width)
		if err != nil {
			return false, err
		}
		res.HashesExecuted += hashed
		if f && !matched {
			matched, seed = true, s
		}
	}

	// Charge modelled time. PEs (across all devices in the node) progress
	// in lockstep over equal shares; early exit happens at the end of the
	// finding PE's current 256-seed batch. Multi-APU runs pay host-side
	// shell dispatch per device and one drain on early exit (§5
	// extension).
	totalPEs := uint64(b.pes) * uint64(b.cfg.Devices)
	perPE := (size + totalPEs - 1) / totalPEs
	sync := 0.0
	if b.cfg.Devices > 1 {
		sync = perDeviceShellSyncSeconds * float64(b.cfg.Devices)
	}
	if matched && !task.Exhaustive {
		rank, err := core.MatchRank(task.Method, task.Base, seed)
		if err != nil {
			return false, err
		}
		share := size / totalPEs // share before remainder distribution
		if share == 0 {
			share = 1
		}
		local := rank % share
		// Round up to the batch boundary where the flag is checked.
		batches := (local + BatchSeeds) / BatchSeeds
		steps := min64(batches*BatchSeeds, perPE)
		clock.AdvanceCycles(float64(steps)*b.cyclesPerSeed, device.GeminiAPU.ClockHz)
		clock.AdvanceSeconds(sync)
		if b.cfg.Devices > 1 {
			clock.AdvanceSeconds(exitDrainSeconds)
		}
		res.SeedsCovered += min64(steps*totalPEs, size)
		res.Found = true
		res.Seed = seed
		res.Distance = d
		return true, nil
	}
	clock.AdvanceCycles(float64(perPE)*b.cyclesPerSeed, device.GeminiAPU.ClockHz)
	clock.AdvanceSeconds(sync)
	res.SeedsCovered += size
	if matched && !res.Found {
		res.Found = true
		res.Seed = seed
		res.Distance = d
	}
	return res.Found && !task.Exhaustive, nil
}

// executeShellBitsliced covers the whole shell with real bit-sliced
// batches across host goroutines, honouring batch-boundary early exit.
// ctx is polled at the same batch boundaries as the exit flag.
func (b *Backend) executeShellBitsliced(ctx context.Context, task core.Task, d int) (bool, u256.Uint256, uint64, error) {
	workers := b.cfg.HostWorkers
	if workers <= 0 {
		workers = 4
	}
	ranges, err := iterseq.Partition(256, d, workers)
	if err != nil {
		return false, u256.Zero, 0, err
	}
	var (
		stop      atomic.Bool
		cancelled atomic.Bool
		hashed    atomic.Uint64
		mu        sync.Mutex
		wg        sync.WaitGroup
	)
	var foundSeed u256.Uint256
	var found bool
	done := ctx.Done()

	for _, r := range ranges {
		if r.Count == 0 {
			continue
		}
		wg.Add(1)
		go func(r iterseq.Range) {
			defer wg.Done()
			it, iterErr := iterseq.New(task.Method, 256, d, r.Start, int64(r.Count))
			if iterErr != nil {
				panic(iterErr)
			}
			var engine bitslice.Engine
			c := make([]int, d)
			var batch [bitslice.Width][32]byte
			var batchSeeds [bitslice.Width]u256.Uint256
			for {
				nIn := 0
				for nIn < bitslice.Width && it.Next(c) {
					s := iterseq.ApplySeed(task.Base, c)
					batchSeeds[nIn] = s
					batch[nIn] = s.Bytes()
					nIn++
				}
				if nIn == 0 {
					return
				}
				// Unused lanes hash garbage; they are ignored below.
				hit := -1
				if b.cfg.Alg == core.SHA1 {
					digests := engine.SHA1Seeds(&batch)
					want := task.Target.Bytes()
					for i := 0; i < nIn; i++ {
						if string(digests[i][:]) == string(want) {
							hit = i
							break
						}
					}
				} else {
					digests := engine.SHA3Seeds256(&batch)
					want := task.Target.Bytes()
					for i := 0; i < nIn; i++ {
						if string(digests[i][:]) == string(want) {
							hit = i
							break
						}
					}
				}
				hashed.Add(uint64(nIn))
				if hit >= 0 {
					mu.Lock()
					if !found {
						found = true
						foundSeed = batchSeeds[hit]
					}
					mu.Unlock()
					if !task.Exhaustive {
						stop.Store(true)
						return
					}
				}
				// Batch-boundary early-exit and cancellation checks, as on
				// hardware.
				select {
				case <-done:
					cancelled.Store(true)
					stop.Store(true)
					return
				default:
				}
				if stop.Load() && (!task.Exhaustive || cancelled.Load()) {
					return
				}
			}
		}(r)
	}
	wg.Wait()
	if cancelled.Load() && !found {
		return false, u256.Zero, hashed.Load(), ctx.Err()
	}
	return found, foundSeed, hashed.Load(), nil
}

// executeSample runs a bounded number of real bit-sliced batches from the
// front of the shell, keeping every modelled search backed by executed
// gate-level code.
func (b *Backend) executeSample(task core.Task, d int, sample int64) (bool, u256.Uint256, uint64, error) {
	it, err := iterseq.New(task.Method, 256, d, 0, sample)
	if err != nil {
		return false, u256.Zero, 0, err
	}
	var engine bitslice.Engine
	c := make([]int, d)
	var batch [bitslice.Width][32]byte
	var batchSeeds [bitslice.Width]u256.Uint256
	hashed := uint64(0)
	for {
		nIn := 0
		for nIn < bitslice.Width && it.Next(c) {
			s := iterseq.ApplySeed(task.Base, c)
			batchSeeds[nIn] = s
			batch[nIn] = s.Bytes()
			nIn++
		}
		if nIn == 0 {
			return false, u256.Zero, hashed, nil
		}
		want := task.Target.Bytes()
		hit := -1
		if b.cfg.Alg == core.SHA1 {
			digests := engine.SHA1Seeds(&batch)
			for i := 0; i < nIn; i++ {
				if string(digests[i][:]) == string(want) {
					hit = i
					break
				}
			}
		} else {
			digests := engine.SHA3Seeds256(&batch)
			for i := 0; i < nIn; i++ {
				if string(digests[i][:]) == string(want) {
					hit = i
					break
				}
			}
		}
		hashed += uint64(nIn)
		if hit >= 0 {
			return true, batchSeeds[hit], hashed, nil
		}
	}
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
