// Package sha1 is a from-scratch implementation of the SHA-1 hash function
// (FIPS 180-1). The RBC-SALTED search hashes billions of fixed-size 256-bit
// seeds, so alongside the generic streaming digest this package provides
// SumSeed, a single-compression fast path with the padding for 32-byte
// messages baked in - the fixed-padding optimization of paper §3.2.2
// applied to SHA-1.
//
// SHA-1 is cryptographically broken and is included, exactly as in the
// paper, only to widen the cross-platform performance comparison.
package sha1

import (
	"encoding/binary"
	"math/bits"
)

// Size is the size of a SHA-1 digest in bytes.
const Size = 20

// BlockSize is the SHA-1 block size in bytes.
const BlockSize = 64

// SeedSize is the fixed message size of the RBC fast path.
const SeedSize = 32

const (
	init0 = 0x67452301
	init1 = 0xEFCDAB89
	init2 = 0x98BADCFE
	init3 = 0x10325476
	init4 = 0xC3D2E1F0

	k0 = 0x5A827999
	k1 = 0x6ED9EBA1
	k2 = 0x8F1BBCDC
	k3 = 0xCA62C1D6
)

// Digest is a streaming SHA-1 computation. The zero value is not valid;
// use New.
type Digest struct {
	h   [5]uint32
	x   [BlockSize]byte
	nx  int
	len uint64
}

// New returns a reset SHA-1 digest.
func New() *Digest {
	d := &Digest{}
	d.Reset()
	return d
}

// Reset restores the digest to its initial state.
func (d *Digest) Reset() {
	d.h = [5]uint32{init0, init1, init2, init3, init4}
	d.nx = 0
	d.len = 0
}

// Write absorbs p into the digest. It never fails.
func (d *Digest) Write(p []byte) (int, error) {
	n := len(p)
	d.len += uint64(n)
	if d.nx > 0 {
		c := copy(d.x[d.nx:], p)
		d.nx += c
		if d.nx == BlockSize {
			block(&d.h, d.x[:])
			d.nx = 0
		}
		p = p[c:]
	}
	for len(p) >= BlockSize {
		block(&d.h, p[:BlockSize])
		p = p[BlockSize:]
	}
	if len(p) > 0 {
		d.nx = copy(d.x[:], p)
	}
	return n, nil
}

// Sum appends the current digest to b and returns it. The digest state is
// not modified, so more data can be written afterwards.
func (d *Digest) Sum(b []byte) []byte {
	dd := *d // finalize a copy
	var tmp [BlockSize + 8]byte
	tmp[0] = 0x80
	padLen := 56 - int(dd.len%64)
	if padLen <= 0 {
		padLen += 64
	}
	binary.BigEndian.PutUint64(tmp[padLen:], dd.len<<3)
	dd.Write(tmp[:padLen+8])
	var out [Size]byte
	for i, v := range dd.h {
		binary.BigEndian.PutUint32(out[i*4:], v)
	}
	return append(b, out[:]...)
}

// Sum20 returns the SHA-1 digest of data.
func Sum20(data []byte) [Size]byte {
	d := New()
	d.Write(data)
	var out [Size]byte
	copy(out[:], d.Sum(nil))
	return out
}

// SumSeed returns the SHA-1 digest of a 32-byte seed using a single
// compression with fixed padding: byte 32 is 0x80, bytes 33..55 are zero,
// and the length field is the constant 256 bits. This removes the padding
// branches and buffer management from the per-seed hot loop.
func SumSeed(seed *[SeedSize]byte) [Size]byte {
	var blk [BlockSize]byte
	copy(blk[:SeedSize], seed[:])
	blk[SeedSize] = 0x80
	blk[62] = 0x01 // length = 256 = 0x100 bits, big endian in bytes 56..63
	h := [5]uint32{init0, init1, init2, init3, init4}
	block(&h, blk[:])
	var out [Size]byte
	for i, v := range h {
		binary.BigEndian.PutUint32(out[i*4:], v)
	}
	return out
}

// block applies the SHA-1 compression function to one 64-byte block.
func block(h *[5]uint32, p []byte) {
	var w [16]uint32
	for i := 0; i < 16; i++ {
		w[i] = binary.BigEndian.Uint32(p[i*4:])
	}
	a, b, c, d, e := h[0], h[1], h[2], h[3], h[4]

	i := 0
	for ; i < 16; i++ {
		f := b&c | (^b)&d
		t := bits.RotateLeft32(a, 5) + f + e + w[i&0xf] + k0
		a, b, c, d, e = t, a, bits.RotateLeft32(b, 30), c, d
	}
	for ; i < 20; i++ {
		tmp := w[(i-3)&0xf] ^ w[(i-8)&0xf] ^ w[(i-14)&0xf] ^ w[i&0xf]
		w[i&0xf] = bits.RotateLeft32(tmp, 1)
		f := b&c | (^b)&d
		t := bits.RotateLeft32(a, 5) + f + e + w[i&0xf] + k0
		a, b, c, d, e = t, a, bits.RotateLeft32(b, 30), c, d
	}
	for ; i < 40; i++ {
		tmp := w[(i-3)&0xf] ^ w[(i-8)&0xf] ^ w[(i-14)&0xf] ^ w[i&0xf]
		w[i&0xf] = bits.RotateLeft32(tmp, 1)
		f := b ^ c ^ d
		t := bits.RotateLeft32(a, 5) + f + e + w[i&0xf] + k1
		a, b, c, d, e = t, a, bits.RotateLeft32(b, 30), c, d
	}
	for ; i < 60; i++ {
		tmp := w[(i-3)&0xf] ^ w[(i-8)&0xf] ^ w[(i-14)&0xf] ^ w[i&0xf]
		w[i&0xf] = bits.RotateLeft32(tmp, 1)
		f := b&c | b&d | c&d
		t := bits.RotateLeft32(a, 5) + f + e + w[i&0xf] + k2
		a, b, c, d, e = t, a, bits.RotateLeft32(b, 30), c, d
	}
	for ; i < 80; i++ {
		tmp := w[(i-3)&0xf] ^ w[(i-8)&0xf] ^ w[(i-14)&0xf] ^ w[i&0xf]
		w[i&0xf] = bits.RotateLeft32(tmp, 1)
		f := b ^ c ^ d
		t := bits.RotateLeft32(a, 5) + f + e + w[i&0xf] + k3
		a, b, c, d, e = t, a, bits.RotateLeft32(b, 30), c, d
	}

	h[0] += a
	h[1] += b
	h[2] += c
	h[3] += d
	h[4] += e
}
