package sha1

import (
	"bytes"
	stdsha1 "crypto/sha1"
	"encoding/hex"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKnownAnswers(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"},
		{"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"},
		{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
			"84983e441c3bd26ebaae4aa1f95129e5e54670f1"},
	}
	for _, c := range cases {
		got := Sum20([]byte(c.in))
		if hex.EncodeToString(got[:]) != c.want {
			t.Errorf("SHA1(%q) = %x, want %s", c.in, got, c.want)
		}
	}
}

func TestAgainstStdlib(t *testing.T) {
	f := func(data []byte) bool {
		got := Sum20(data)
		want := stdsha1.Sum(data)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAgainstStdlibLengthSweep(t *testing.T) {
	// Hit every padding boundary: lengths 0..130 cover one-, two- and
	// three-block finalizations.
	r := rand.New(rand.NewSource(3))
	for n := 0; n <= 130; n++ {
		data := make([]byte, n)
		r.Read(data)
		got := Sum20(data)
		want := stdsha1.Sum(data)
		if got != want {
			t.Fatalf("length %d: got %x want %x", n, got, want)
		}
	}
}

func TestStreamingWriteSplits(t *testing.T) {
	data := make([]byte, 257)
	rand.New(rand.NewSource(4)).Read(data)
	want := Sum20(data)
	for _, split := range []int{1, 7, 63, 64, 65, 128, 256} {
		d := New()
		for i := 0; i < len(data); i += split {
			end := i + split
			if end > len(data) {
				end = len(data)
			}
			d.Write(data[i:end])
		}
		if got := d.Sum(nil); !bytes.Equal(got, want[:]) {
			t.Errorf("split %d: got %x want %x", split, got, want)
		}
	}
}

func TestSumDoesNotConsumeState(t *testing.T) {
	d := New()
	d.Write([]byte("ab"))
	first := d.Sum(nil)
	second := d.Sum(nil)
	if !bytes.Equal(first, second) {
		t.Error("Sum modified digest state")
	}
	d.Write([]byte("c"))
	want := Sum20([]byte("abc"))
	if got := d.Sum(nil); !bytes.Equal(got, want[:]) {
		t.Errorf("continued write after Sum: got %x want %x", got, want)
	}
}

func TestSumSeedMatchesGeneric(t *testing.T) {
	f := func(seed [32]byte) bool {
		return SumSeed(&seed) == Sum20(seed[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReset(t *testing.T) {
	d := New()
	d.Write([]byte("garbage"))
	d.Reset()
	d.Write([]byte("abc"))
	want := Sum20([]byte("abc"))
	if got := d.Sum(nil); !bytes.Equal(got, want[:]) {
		t.Error("Reset did not restore initial state")
	}
}

func BenchmarkSumSeed(b *testing.B) {
	var seed [32]byte
	b.SetBytes(32)
	for i := 0; i < b.N; i++ {
		seed[0] = byte(i)
		sink1 = SumSeed(&seed)
	}
}

func BenchmarkSumGeneric32(b *testing.B) {
	seed := make([]byte, 32)
	b.SetBytes(32)
	for i := 0; i < b.N; i++ {
		seed[0] = byte(i)
		sink1 = Sum20(seed)
	}
}

var sink1 [20]byte
