// Multi-buffer SHA-1: several independent single-block compressions
// interleaved in one pass, the OpenSSL-multibuffer idiom in scalar form.
//
// SHA-1's round function is a serial dependency chain - each round's
// ROTL5(a) + f + e + w + k feeds the next - so one compression can never
// fill a superscalar core's ALU ports. Bit-slicing does not help either:
// the modular adds decompose into ripple-carry gate chains that lose to
// the hardware adder (measured in BENCH_host.json, PR 5). Interleaving
// MultiWidth independent messages keeps the hardware adder AND gives the
// core MultiWidth dependency chains to overlap: round i of lane 0 has no
// data dependence on round i of lane 1, so their instructions retire in
// parallel from the out-of-order window.
//
// The working variables are explicit scalars with tuple-assignment role
// rotation (mov elimination makes the renames near-free), exactly like
// the scalar block function - NOT ring-indexed arrays, which would pin
// every a..e access to the stack and trade the latency win for L1
// round-trips.
package sha1

import "math/bits"

// MultiWidth is the batch width of the multi-buffer path. The kernel
// interleaves two lanes per pass - two sets of five working variables
// plus temporaries is what amd64's ~14 allocatable integer registers
// hold without spilling; four-lane interleave measures slower because
// the 20 working variables spill to the stack every round - and a batch
// runs two back-to-back passes, which the out-of-order window also
// overlaps across the boundary.
const MultiWidth = 4

// SeedWords4 hashes MultiWidth 32-byte seeds - fixed single-block
// padding, as SumSeed - in two interleaved 2-lane passes, writing each
// lane's digest words h0..h4 (big-endian word convention) into out. The
// batched host matcher compares these words directly against the target
// digest, skipping byte serialization.
func SeedWords4(seeds *[MultiWidth][SeedSize]byte, out *[MultiWidth][5]uint32) {
	seedWords2(&seeds[0], &seeds[1], &out[0], &out[1])
	seedWords2(&seeds[2], &seeds[3], &out[2], &out[3])
}

// seedWords2 is the 2-lane interleaved compression: one round of lane 0
// and one round of lane 1 per iteration, all ten working variables in
// registers. Lane 1's round has no data dependence on lane 0's, so the
// two serial ROTL5(a)+f+e+w+k chains overlap in the execution window.
func seedWords2(s0, s1 *[SeedSize]byte, o0, o1 *[5]uint32) {
	var w0, w1 [16]uint32
	for t := 0; t < 8; t++ {
		b := s0[t*4:]
		w0[t] = uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
		b = s1[t*4:]
		w1[t] = uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	}
	w0[8], w1[8] = 0x80000000, 0x80000000
	w0[15], w1[15] = 256, 256 // message length in bits

	a0, b0, c0, d0, e0 := uint32(init0), uint32(init1), uint32(init2), uint32(init3), uint32(init4)
	a1, b1, c1, d1, e1 := a0, b0, c0, d0, e0

	i := 0
	for ; i < 16; i++ {
		t0 := bits.RotateLeft32(a0, 5) + (d0 ^ (b0 & (c0 ^ d0))) + e0 + w0[i] + k0
		e0, d0, c0, b0, a0 = d0, c0, bits.RotateLeft32(b0, 30), a0, t0
		t1 := bits.RotateLeft32(a1, 5) + (d1 ^ (b1 & (c1 ^ d1))) + e1 + w1[i] + k0
		e1, d1, c1, b1, a1 = d1, c1, bits.RotateLeft32(b1, 30), a1, t1
	}
	for ; i < 20; i++ {
		j := i & 15
		j3, j8, j14 := (i-3)&15, (i-8)&15, (i-14)&15
		w0[j] = bits.RotateLeft32(w0[j3]^w0[j8]^w0[j14]^w0[j], 1)
		w1[j] = bits.RotateLeft32(w1[j3]^w1[j8]^w1[j14]^w1[j], 1)
		t0 := bits.RotateLeft32(a0, 5) + (d0 ^ (b0 & (c0 ^ d0))) + e0 + w0[j] + k0
		e0, d0, c0, b0, a0 = d0, c0, bits.RotateLeft32(b0, 30), a0, t0
		t1 := bits.RotateLeft32(a1, 5) + (d1 ^ (b1 & (c1 ^ d1))) + e1 + w1[j] + k0
		e1, d1, c1, b1, a1 = d1, c1, bits.RotateLeft32(b1, 30), a1, t1
	}
	for ; i < 40; i++ {
		j := i & 15
		j3, j8, j14 := (i-3)&15, (i-8)&15, (i-14)&15
		w0[j] = bits.RotateLeft32(w0[j3]^w0[j8]^w0[j14]^w0[j], 1)
		w1[j] = bits.RotateLeft32(w1[j3]^w1[j8]^w1[j14]^w1[j], 1)
		t0 := bits.RotateLeft32(a0, 5) + (b0 ^ c0 ^ d0) + e0 + w0[j] + k1
		e0, d0, c0, b0, a0 = d0, c0, bits.RotateLeft32(b0, 30), a0, t0
		t1 := bits.RotateLeft32(a1, 5) + (b1 ^ c1 ^ d1) + e1 + w1[j] + k1
		e1, d1, c1, b1, a1 = d1, c1, bits.RotateLeft32(b1, 30), a1, t1
	}
	for ; i < 60; i++ {
		j := i & 15
		j3, j8, j14 := (i-3)&15, (i-8)&15, (i-14)&15
		w0[j] = bits.RotateLeft32(w0[j3]^w0[j8]^w0[j14]^w0[j], 1)
		w1[j] = bits.RotateLeft32(w1[j3]^w1[j8]^w1[j14]^w1[j], 1)
		t0 := bits.RotateLeft32(a0, 5) + (b0 ^ ((b0 ^ c0) & (b0 ^ d0))) + e0 + w0[j] + k2
		e0, d0, c0, b0, a0 = d0, c0, bits.RotateLeft32(b0, 30), a0, t0
		t1 := bits.RotateLeft32(a1, 5) + (b1 ^ ((b1 ^ c1) & (b1 ^ d1))) + e1 + w1[j] + k2
		e1, d1, c1, b1, a1 = d1, c1, bits.RotateLeft32(b1, 30), a1, t1
	}
	for ; i < 80; i++ {
		j := i & 15
		j3, j8, j14 := (i-3)&15, (i-8)&15, (i-14)&15
		w0[j] = bits.RotateLeft32(w0[j3]^w0[j8]^w0[j14]^w0[j], 1)
		w1[j] = bits.RotateLeft32(w1[j3]^w1[j8]^w1[j14]^w1[j], 1)
		t0 := bits.RotateLeft32(a0, 5) + (b0 ^ c0 ^ d0) + e0 + w0[j] + k3
		e0, d0, c0, b0, a0 = d0, c0, bits.RotateLeft32(b0, 30), a0, t0
		t1 := bits.RotateLeft32(a1, 5) + (b1 ^ c1 ^ d1) + e1 + w1[j] + k3
		e1, d1, c1, b1, a1 = d1, c1, bits.RotateLeft32(b1, 30), a1, t1
	}

	o0[0], o0[1], o0[2], o0[3], o0[4] =
		init0+a0, init1+b0, init2+c0, init3+d0, init4+e0
	o1[0], o1[1], o1[2], o1[3], o1[4] =
		init0+a1, init1+b1, init2+c1, init3+d1, init4+e1
}

// SumSeeds4 hashes MultiWidth 32-byte seeds in one interleaved pass,
// returning byte-form digests. SeedWords4 is the matcher-facing variant
// that skips the serialization.
func SumSeeds4(seeds *[MultiWidth][SeedSize]byte) [MultiWidth][Size]byte {
	var words [MultiWidth][5]uint32
	SeedWords4(seeds, &words)
	var out [MultiWidth][Size]byte
	for l := 0; l < MultiWidth; l++ {
		for r, v := range words[l] {
			out[l][r*4] = byte(v >> 24)
			out[l][r*4+1] = byte(v >> 16)
			out[l][r*4+2] = byte(v >> 8)
			out[l][r*4+3] = byte(v)
		}
	}
	return out
}
