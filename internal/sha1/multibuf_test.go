package sha1

import (
	cryptosha1 "crypto/sha1"
	"math/rand"
	"testing"
)

// TestSumSeeds4MatchesScalar pins the interleaved multi-buffer path to
// both the package's own scalar fast path and the standard library
// implementation.
func TestSumSeeds4MatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 16; trial++ {
		var seeds [MultiWidth][SeedSize]byte
		for l := range seeds {
			r.Read(seeds[l][:])
		}
		got := SumSeeds4(&seeds)
		for l := range seeds {
			if want := SumSeed(&seeds[l]); got[l] != want {
				t.Fatalf("trial %d lane %d: multibuffer %x, SumSeed %x", trial, l, got[l], want)
			}
			if want := cryptosha1.Sum(seeds[l][:]); got[l] != want {
				t.Fatalf("trial %d lane %d: multibuffer %x, crypto/sha1 %x", trial, l, got[l], want)
			}
		}
	}
}

// TestSeedWords4MatchesBytes pins the matcher-facing word form to the
// byte form: big-endian serialization of the words is the digest.
func TestSeedWords4MatchesBytes(t *testing.T) {
	var seeds [MultiWidth][SeedSize]byte
	for l := range seeds {
		for j := range seeds[l] {
			seeds[l][j] = byte(l*41 + j)
		}
	}
	var words [MultiWidth][5]uint32
	SeedWords4(&seeds, &words)
	sums := SumSeeds4(&seeds)
	for l := range seeds {
		for r := 0; r < 5; r++ {
			want := uint32(sums[l][r*4])<<24 | uint32(sums[l][r*4+1])<<16 |
				uint32(sums[l][r*4+2])<<8 | uint32(sums[l][r*4+3])
			if words[l][r] != want {
				t.Fatalf("lane %d word %d: %#x, want %#x", l, r, words[l][r], want)
			}
		}
	}
}

// TestSumSeeds4Allocs: the multi-buffer kernel is hot-loop code and must
// not allocate.
func TestSumSeeds4Allocs(t *testing.T) {
	var seeds [MultiWidth][SeedSize]byte
	var words [MultiWidth][5]uint32
	if n := testing.AllocsPerRun(50, func() {
		SeedWords4(&seeds, &words)
	}); n != 0 {
		t.Errorf("SeedWords4 allocates %.1f/op", n)
	}
}

// FuzzSHA1Multi4 differentially fuzzes the interleaved kernel against
// crypto/sha1: four seeds derived from the fuzz input must hash
// identically on every lane.
func FuzzSHA1Multi4(f *testing.F) {
	f.Add([]byte("multibuffer"), uint64(4))
	f.Add([]byte{}, uint64(0))
	f.Fuzz(func(t *testing.T, data []byte, salt uint64) {
		var seeds [MultiWidth][SeedSize]byte
		for l := range seeds {
			for j := range seeds[l] {
				v := salt + uint64(l)*131 + uint64(j)*17
				if len(data) > 0 {
					v += uint64(data[(l*SeedSize+j)%len(data)])
				}
				seeds[l][j] = byte(v)
			}
		}
		got := SumSeeds4(&seeds)
		for l := range seeds {
			if want := cryptosha1.Sum(seeds[l][:]); got[l] != want {
				t.Fatalf("lane %d: multibuffer %x, crypto/sha1 %x", l, got[l], want)
			}
		}
	})
}

// BenchmarkSumSeeds4 measures the interleaved kernel against four scalar
// fixed-padding hashes - the fundamental multi-buffer comparison.
func BenchmarkSumSeeds4(b *testing.B) {
	var seeds [MultiWidth][SeedSize]byte
	for l := range seeds {
		seeds[l][0] = byte(l)
	}
	var words [MultiWidth][5]uint32
	b.Run("multibuf4", func(b *testing.B) {
		b.SetBytes(MultiWidth * SeedSize)
		for i := 0; i < b.N; i++ {
			seeds[0][1] = byte(i)
			SeedWords4(&seeds, &words)
		}
	})
	b.Run("scalar-x4", func(b *testing.B) {
		b.SetBytes(MultiWidth * SeedSize)
		for i := 0; i < b.N; i++ {
			seeds[0][1] = byte(i)
			for l := range seeds {
				sinkSum = SumSeed(&seeds[l])
			}
		}
	})
}

var sinkSum [Size]byte
