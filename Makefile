GO ?= go
FUZZTIME ?= 10s

.PHONY: check build vet test race fuzz cluster-race sched-race plan-race replica-race bench bench-all bench-smoke bench-gate

# check is the CI gate: compile everything, vet, run the full test suite
# with the race detector (the scheduler and backend-cancellation tests
# are concurrency tests and only count when raced), then smoke the wire
# fuzz targets.
check: build vet race fuzz

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# cluster-race hammers the fault-tolerance property tests (worker kills,
# re-dispatch, rejoin) twice under the race detector; CI runs this as a
# dedicated job because the timing-sensitive failure paths only count
# when raced and repeated.
cluster-race:
	$(GO) test -race ./internal/cluster/... -count=2

# sched-race does the same for the multi-class serving path: priority
# aging, deadline admission, shed-the-tail and hedged dispatch are all
# raced, repeated property tests.
sched-race:
	$(GO) test -race ./internal/sched/... -count=2

# plan-race races the planner's concurrent plan/dispatch/feedback
# surfaces (EWMA corrections, the joules ledger, stats snapshots) the
# same way.
plan-race:
	$(GO) test -race ./internal/plan/... -count=2

# replica-race is the scaled-out CA suite under the race detector: the
# WAL streaming / snapshot catch-up / fencing property tests, the WAL
# tailing and netproto routing-client layers beneath them, and the two
# gating drills — the three-node rolling restart (zero dropped in-flight
# auths) and the kill-promote failover (no acked-write loss, nonce
# single-use across promotion).
replica-race:
	$(GO) test -race ./internal/replica/... ./internal/durable/... ./internal/ring/... ./internal/netproto/... -count=2
	$(GO) test -race ./cmd/rbc-server -run 'TestRollingRestartDrill|TestKillPromoteFailover' -count=2

# fuzz smokes the netproto frame/error-payload fuzzers, the WAL record
# decoder, the differential fuzzers for the wide batch kernels (256-lane
# bit-sliced SHA-3 and 4-way multi-buffer SHA-1, each against its scalar
# reference), and the sliced-domain delta engine (chained delta advances
# against a fresh pack, across all four iterators) for FUZZTIME each;
# -run='^$$' skips the unit tests so only fuzzing runs.
fuzz:
	$(GO) test ./internal/netproto -run='^$$' -fuzz=FuzzReadFrame -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/netproto -run='^$$' -fuzz=FuzzDecodeError -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/durable -run='^$$' -fuzz=FuzzWALDecode -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/bitslice -run='^$$' -fuzz=FuzzSHA3Wide -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/sha1 -run='^$$' -fuzz=FuzzSHA1Multi4 -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/core -run='^$$' -fuzz=FuzzDeltaFill -fuzztime=$(FUZZTIME)

# bench measures the host search hot path (scalar vs every batch
# kernel, every alg x iteration method) and refreshes BENCH_host.json
# plus the per-class serving-latency point BENCH_serve.json and the
# planner-vs-fixed-backends point BENCH_planner.json, the committed
# perf-trajectory points.
bench:
	$(GO) test ./internal/core -run='^$$' -bench=ShellHost -benchmem
	$(GO) run ./cmd/rbc-bench -experiment hostthroughput -json BENCH_host.json
	$(GO) run ./cmd/rbc-bench -experiment servelatency -json BENCH_serve.json
	$(GO) run ./cmd/rbc-bench -experiment planner -trials 32 -json BENCH_planner.json

# bench-gate re-measures host throughput and fails when any kernel's
# speedup ratio regresses more than 15% below the committed
# BENCH_host.json (ratios transfer across machines; absolute seeds/sec
# do not).
bench-gate:
	$(GO) run ./cmd/rbc-bench -experiment hostthroughput -baseline BENCH_host.json

# bench-all runs every benchmark in the repository.
bench-all:
	$(GO) test -bench=. -benchmem ./...

# bench-smoke is the CI guard: one iteration of the hot-path benches,
# so a compile break or panic in the batched engine fails loudly
# without paying for stable timings, then the baseline gate re-measures
# host throughput and fails on a >15% speedup-ratio regression against
# the committed BENCH_host.json.
bench-smoke:
	$(GO) test ./internal/core -run='^$$' -bench=ShellHost -benchtime=1x -benchmem
	$(GO) test ./internal/bitslice -run='^$$' -bench=SlicedKernels -benchtime=1x -benchmem
	$(GO) run ./cmd/rbc-bench -experiment hostthroughput -baseline BENCH_host.json
