GO ?= go
FUZZTIME ?= 10s

.PHONY: check build vet test race fuzz cluster-race bench

# check is the CI gate: compile everything, vet, run the full test suite
# with the race detector (the scheduler and backend-cancellation tests
# are concurrency tests and only count when raced), then smoke the wire
# fuzz targets.
check: build vet race fuzz

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# cluster-race hammers the fault-tolerance property tests (worker kills,
# re-dispatch, rejoin) twice under the race detector; CI runs this as a
# dedicated job because the timing-sensitive failure paths only count
# when raced and repeated.
cluster-race:
	$(GO) test -race ./internal/cluster/... -count=2

# fuzz smokes the netproto frame/error-payload fuzzers and the WAL
# record decoder for FUZZTIME each; -run='^$$' skips the unit tests so
# only fuzzing runs.
fuzz:
	$(GO) test ./internal/netproto -run='^$$' -fuzz=FuzzReadFrame -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/netproto -run='^$$' -fuzz=FuzzDecodeError -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/durable -run='^$$' -fuzz=FuzzWALDecode -fuzztime=$(FUZZTIME)

bench:
	$(GO) test -bench=. -benchmem
