GO ?= go

.PHONY: check build vet test race bench

# check is the CI gate: compile everything, vet, then run the full test
# suite with the race detector (the scheduler and backend-cancellation
# tests are concurrency tests and only count when raced).
check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem
