// Energy: the Table 6 scenario - compare search time, energy and power
// of the simulated A100 GPU and Gemini APU for the exhaustive d=5 search,
// for both SHA-1 and SHA-3.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"

	"rbcsalted"
	"rbcsalted/internal/puf"
	"rbcsalted/internal/u256"
)

func main() {
	r := rand.New(rand.NewPCG(2024, 7))
	base := u256.New(r.Uint64(), r.Uint64(), r.Uint64(), r.Uint64())
	client := puf.InjectNoise(base, base, 5, r)

	fmt.Println("Exhaustive RBC-SALTED search, d=5 (u(5) = 8,987,138,113 seeds)")
	fmt.Printf("%-12s %-6s %10s %12s %10s %12s\n",
		"device", "hash", "search(s)", "energy(J)", "peak(W)", "J/Gseed")
	for _, alg := range []rbc.HashAlg{rbc.SHA1, rbc.SHA3} {
		backends := []rbc.Backend{
			rbc.NewGPUBackend(rbc.GPUConfig{Alg: alg, SharedMemoryState: true}),
			rbc.NewAPUBackend(rbc.APUConfig{Alg: alg}),
		}
		for i, b := range backends {
			oracle := client
			res, err := b.Search(context.Background(), rbc.Task{
				Base:        base,
				Target:      rbc.HashSeed(alg, client),
				MaxDistance: 5,
				Exhaustive:  true,
				Oracle:      &oracle,
			})
			if err != nil {
				log.Fatal(err)
			}
			name := []string{"A100 GPU", "Gemini APU"}[i]
			fmt.Printf("%-12s %-6s %10.2f %12.2f %10.2f %12.2f\n",
				name, alg, res.DeviceSeconds, res.EnergyJoules, res.PeakWatts,
				res.EnergyJoules/(float64(res.SeedsCovered)/1e9))
		}
	}
	fmt.Println()
	fmt.Println("Paper Table 6: GPU/SHA-1 317 J, APU/SHA-1 124 J (APU wins);")
	fmt.Println("               GPU/SHA-3 947 J, APU/SHA-3 974 J (rough parity).")
}
