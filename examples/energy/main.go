// Energy: the Table 6 scenario - compare search time, energy and power
// of the simulated A100 GPU and Gemini APU for the exhaustive d=5 search,
// for both SHA-1 and SHA-3 - then hand the same traffic to the
// cost-based planner under a joules budget and watch it route each
// search to the cheapest engine.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"

	"rbcsalted"
	"rbcsalted/internal/puf"
	"rbcsalted/internal/u256"
)

func main() {
	r := rand.New(rand.NewPCG(2024, 7))
	base := u256.New(r.Uint64(), r.Uint64(), r.Uint64(), r.Uint64())
	client := puf.InjectNoise(base, base, 5, r)

	fmt.Println("Exhaustive RBC-SALTED search, d=5 (u(5) = 8,987,138,113 seeds)")
	fmt.Printf("%-12s %-6s %10s %12s %10s %12s\n",
		"device", "hash", "search(s)", "energy(J)", "peak(W)", "J/Gseed")
	for _, alg := range []rbc.HashAlg{rbc.SHA1, rbc.SHA3} {
		for _, kind := range []rbc.BackendKind{rbc.BackendGPU, rbc.BackendAPU} {
			b, err := rbc.NewBackend(rbc.BackendSpec{Kind: kind}, rbc.WithAlg(alg))
			if err != nil {
				log.Fatal(err)
			}
			oracle := client
			res, err := b.Search(context.Background(), rbc.Task{
				Base:        base,
				Target:      rbc.HashSeed(alg, client),
				MaxDistance: 5,
				Exhaustive:  true,
				Oracle:      &oracle,
			})
			if err != nil {
				log.Fatal(err)
			}
			name := map[rbc.BackendKind]string{
				rbc.BackendGPU: "A100 GPU", rbc.BackendAPU: "Gemini APU"}[kind]
			fmt.Printf("%-12s %-6s %10.2f %12.2f %10.2f %12.2f\n",
				name, alg, res.DeviceSeconds, res.EnergyJoules, res.PeakWatts,
				res.EnergyJoules/(float64(res.SeedsCovered)/1e9))
		}
	}
	fmt.Println()
	fmt.Println("Paper Table 6: GPU/SHA-1 317 J, APU/SHA-1 124 J (APU wins);")
	fmt.Println("               GPU/SHA-3 947 J, APU/SHA-3 974 J (rough parity).")

	// The planner runs the same comparison live: give it the engine trio,
	// an energy-first policy and a joules budget, and it dispatches every
	// search to whichever engine its calibrated cost curves predict to be
	// cheapest for that shell depth.
	const budget = 2000.0
	b, err := rbc.NewBackend(rbc.BackendSpec{Kind: rbc.BackendPlanner},
		rbc.WithAlg(rbc.SHA3),
		rbc.WithPlanPolicy(rbc.PlanEnergy),
		rbc.WithJoulesBudget(budget))
	if err != nil {
		log.Fatal(err)
	}
	planner := b.(*rbc.Planner)

	fmt.Printf("\nPlanner dispatch, SHA-3 early-exit, %.0f J budget (policy energy)\n", budget)
	fmt.Printf("%-4s %10s %12s %-14s\n", "d", "search(s)", "energy(J)", "engine")
	for d := 1; d <= 5; d++ {
		r := rand.New(rand.NewPCG(9000+uint64(d), 11))
		base := u256.New(r.Uint64(), r.Uint64(), r.Uint64(), r.Uint64())
		client := puf.InjectNoise(base, base, d, r)
		oracle := client
		before := engineDispatches(planner.Stats())
		res, err := planner.Search(context.Background(), rbc.Task{
			Base:        base,
			Target:      rbc.HashSeed(rbc.SHA3, client),
			MaxDistance: d,
			Oracle:      &oracle,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4d %10.3f %12.2f %-14s\n",
			d, res.DeviceSeconds, res.EnergyJoules, chosenEngine(before, planner.Stats()))
	}
	st := planner.Stats()
	fmt.Printf("\nbudget: %.1f of %.0f J spent across %d searches\n",
		st.JoulesSpent, st.JoulesBudget, st.Plans)
	fmt.Println("the low-power APU wins every shallow shell; at d=5 the GPU's")
	fmt.Println("throughput advantage makes it the cheaper joules-per-search bet.")
}

// engineDispatches snapshots per-engine primary dispatch counts.
func engineDispatches(st rbc.PlannerStats) map[string]uint64 {
	out := make(map[string]uint64, len(st.Engines))
	for _, e := range st.Engines {
		out[e.Name] = e.Dispatches
	}
	return out
}

// chosenEngine names the engine whose dispatch count advanced.
func chosenEngine(before map[string]uint64, after rbc.PlannerStats) string {
	for _, e := range after.Engines {
		if e.Dispatches > before[e.Name] {
			return e.Name
		}
	}
	return "?"
}
