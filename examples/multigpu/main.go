// Multigpu: the Figure 4 scenario - scale the SALTED-GPU search across
// 1-3 simulated A100s for exhaustive and early-exit searches and print
// the speedup curves.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"

	"rbcsalted"
	"rbcsalted/internal/puf"
	"rbcsalted/internal/u256"
)

func main() {
	const trials = 40
	fmt.Println("Multi-GPU scalability of the d=5 search (simulated A100s)")
	for _, alg := range []rbc.HashAlg{rbc.SHA1, rbc.SHA3} {
		for _, exhaustive := range []bool{true, false} {
			label := "early-exit"
			if exhaustive {
				label = "exhaustive"
			}
			var base float64
			fmt.Printf("\n%s, %s:\n", alg, label)
			for g := 1; g <= 3; g++ {
				mean := meanSeconds(alg, g, exhaustive, trials)
				if g == 1 {
					base = mean
				}
				fmt.Printf("  %d GPU: %6.2fs  speedup %.2fx\n", g, mean, base/mean)
			}
		}
	}
	fmt.Println("\nPaper Figure 4: SHA-3 reaches 2.87x (exhaustive) and 2.66x")
	fmt.Println("(early exit) on 3 GPUs; SHA-1 scales worse than SHA-3.")
}

func meanSeconds(alg rbc.HashAlg, devices int, exhaustive bool, trials int) float64 {
	// NewBackend's GPU kind runs shared-memory iterator state (the
	// paper's best config) by default.
	backend, err := rbc.NewBackend(rbc.BackendSpec{Kind: rbc.BackendGPU},
		rbc.WithAlg(alg), rbc.WithDevices(devices))
	if err != nil {
		log.Fatal(err)
	}
	n := trials
	if exhaustive {
		n = 1 // deterministic
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		r := rand.New(rand.NewPCG(uint64(100+i), 5))
		base := u256.New(r.Uint64(), r.Uint64(), r.Uint64(), r.Uint64())
		client := puf.InjectNoise(base, base, 5, r)
		oracle := client
		res, err := backend.Search(context.Background(), rbc.Task{
			Base:        base,
			Target:      rbc.HashSeed(alg, client),
			MaxDistance: 5,
			Exhaustive:  exhaustive,
			Oracle:      &oracle,
		})
		if err != nil {
			log.Fatal(err)
		}
		sum += res.DeviceSeconds
	}
	return sum / float64(n)
}
