// Quickstart: enroll a simulated PUF, run the full RBC-SALTED protocol
// in-process on the real CPU backend, and print the recovered seed and
// session key.
package main

import (
	"context"
	"fmt"
	"log"

	"rbcsalted"
)

func main() {
	// 1. Manufacture a PUF and capture its enrollment image (this happens
	//    once, in the secure facility).
	// A well-behaved PUF (~1 flipped bit per read) keeps the search
	// radius CPU-friendly; the paper's nominal 5-bit profile
	// (rbc.DefaultPUFProfile) needs the d=5 radius of the device models.
	profile := rbc.PUFProfile{BaseError: 1.0 / 256.0, FlakyFraction: 0.05, FlakyError: 0.35}
	dev, err := rbc.NewPUFDevice(1234, 1024, profile)
	if err != nil {
		log.Fatal(err)
	}
	image, err := rbc.EnrollPUF(dev, 31)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Assemble the server side: encrypted image store, search backend,
	//    key generator, registration authority.
	store, err := rbc.NewImageStore([32]byte{0x01, 0x02})
	if err != nil {
		log.Fatal(err)
	}
	ca, err := rbc.NewCA(store, &rbc.CPUBackend{Alg: rbc.SHA3}, &rbc.AESKeyGenerator{},
		rbc.NewRA(), rbc.CAConfig{MaxDistance: 3})
	if err != nil {
		log.Fatal(err)
	}
	if err := ca.Enroll("alice", image); err != nil {
		log.Fatal(err)
	}

	// 3. The client answers a challenge by reading its PUF and hashing
	//    the (erratic) seed.
	client := &rbc.PUFClient{ID: "alice", Device: dev}
	ch, err := ca.BeginHandshake("alice")
	if err != nil {
		log.Fatal(err)
	}
	m1, err := client.Respond(ch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client digest M1 = %s\n", m1)

	// 4. The CA brute-forces the Hamming ball until a candidate seed
	//    hashes to M1, then salts it and generates the session key.
	res, err := ca.Authenticate(context.Background(), rbc.AuthRequest{Client: "alice", Nonce: ch.Nonce, M1: m1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("authenticated: %v\n", res.Authenticated)
	fmt.Printf("seed recovered at Hamming distance %d after %d hashes in %.3fs\n",
		res.Search.Distance, res.Search.HashesExecuted, res.Search.DeviceSeconds)
	if res.Authenticated {
		fmt.Printf("session public key: %x...\n", res.PublicKey[:16])
	}
}
