// Iterators: run the same RBC search with each seed-iteration algorithm
// (paper §3.2.1 / Table 4) on the real CPU backend at a host-feasible
// radius, verifying they all find the identical seed, and print their
// genuinely measured per-seed costs.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"
	"time"

	"rbcsalted"
	"rbcsalted/internal/puf"
	"rbcsalted/internal/u256"
)

func main() {
	r := rand.New(rand.NewPCG(99, 1))
	base := u256.New(r.Uint64(), r.Uint64(), r.Uint64(), r.Uint64())
	client := puf.InjectNoise(base, base, 2, r)
	target := rbc.HashSeed(rbc.SHA3, client)

	methods := []struct {
		m    rbc.IterMethod
		note string
	}{
		{rbc.IterGray, "minimal-change Gray code (Chase-class; paper's winner)"},
		{rbc.IterGosper, "Gosper's hack at 256 bits (prior RBC work)"},
		{rbc.IterAlg515, "Algorithm 515 lexicographic unranking"},
		{rbc.IterMifsud, "Algorithm 154 lexicographic successor"},
	}

	fmt.Println("Exhaustive d=2 search (32,897 seeds) with each iterator, SHA-3:")
	backend := &rbc.CPUBackend{Alg: rbc.SHA3}
	for _, m := range methods {
		start := time.Now()
		res, err := backend.Search(context.Background(), rbc.Task{
			Base:        base,
			Target:      target,
			MaxDistance: 2,
			Method:      m.m,
			Exhaustive:  true,
		})
		if err != nil {
			log.Fatal(err)
		}
		if !res.Found || !res.Seed.Equal(client) {
			log.Fatalf("%v failed to recover the seed", m.m)
		}
		fmt.Printf("  %-11v %8.3fs  (%s)\n", m.m, time.Since(start).Seconds(), m.note)
	}
	fmt.Println("\nAll four iterators recovered the identical seed from disjoint")
	fmt.Println("orderings of the same Hamming ball. On the paper's A100, the")
	fmt.Println("minimal-change method is 22.7% faster end to end (Table 4).")
}
