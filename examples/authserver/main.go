// Authserver: the full networked protocol of Figure 1 on loopback TCP -
// a CA server with an encrypted image store on one side, a noisy
// PUF-equipped client on the other, including an impostor attempt and a
// deliberately noise-injected session.
//
// The CA searches through rbc.NewScheduler, the bounded admission pool a
// serving deployment would use, and the whole stack is instrumented the
// way rbc-server's -debug-addr surface is: a metrics registry shared by
// the scheduler and the protocol server, plus a trace ring recording
// each search's lifecycle. The run ends with the scheduler statistics,
// the netproto counters, and the recorded trace of the impostor search.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"rbcsalted"
)

func main() {
	// Server side: enroll alice's PUF image.
	profile := rbc.PUFProfile{BaseError: 0.5 / 256.0, FlakyFraction: 0.05, FlakyError: 0.35}
	aliceDev, err := rbc.NewPUFDevice(7, 1024, profile)
	if err != nil {
		log.Fatal(err)
	}
	aliceImage, err := rbc.EnrollPUF(aliceDev, 31)
	if err != nil {
		log.Fatal(err)
	}
	store, err := rbc.NewImageStore([32]byte{0xAA})
	if err != nil {
		log.Fatal(err)
	}
	// The scheduler bounds concurrent searches (it is itself a Backend);
	// beyond Workers running and QueueDepth waiting, authentications are
	// shed with rbc.ErrOverloaded -> wire status "overloaded", and
	// infeasible deadlines are refused up front with
	// rbc.ErrDeadlineInfeasible -> "deadline-infeasible". Hedged dispatch
	// re-issues straggling searches once their wait exceeds the observed
	// p95 service time. One registry and one trace ring observe the whole
	// serving path: the scheduler records per-class queue/service
	// histograms and lifecycle events, the backend adds per-shell search
	// events, the protocol server counts connections and statuses.
	reg := rbc.NewMetricsRegistry()
	ring := rbc.NewTraceRing(256)
	pool := rbc.NewScheduler(&rbc.CPUBackend{Alg: rbc.SHA3},
		rbc.SchedulerConfig{Workers: 2, QueueDepth: 8, Trace: ring, Metrics: reg,
			Hedge: rbc.HedgeConfig{Enabled: true}})
	defer pool.Close()
	ca, err := rbc.NewCA(store, pool, &rbc.AESKeyGenerator{},
		rbc.NewRA(), rbc.CAConfig{MaxDistance: 2, Trace: ring})
	if err != nil {
		log.Fatal(err)
	}
	if err := ca.Enroll("alice", aliceImage); err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	server := &rbc.Server{CA: ca, Metrics: rbc.NewNetMetrics(reg)}
	go server.Serve(ln)
	defer server.Close()
	fmt.Printf("CA listening on %s\n", ln.Addr())

	// The client side goes through rbc.Dial — the routing-aware Client
	// that owns dialing, redirects and retry. On a single node it simply
	// dials the one address; against a sharded deployment the same code
	// routes by client ID and follows wrong-shard redirects.
	netClient, err := rbc.Dial(rbc.ClientConfig{Addrs: []string{ln.Addr().String()}})
	if err != nil {
		log.Fatal(err)
	}
	defer netClient.Close()
	authenticate := func(label string, device *rbc.PUFClient, req rbc.ClientAuthRequest) {
		req.Device = device
		res, err := netClient.Authenticate(context.Background(), req)
		if err != nil {
			fmt.Printf("%-28s rejected by server: %v\n", label, err)
			return
		}
		fmt.Printf("%-28s authenticated=%v search=%.3fs\n",
			label, res.Authenticated, res.SearchSeconds)
	}

	// 1. Alice with her real PUF: should authenticate. A quiet PUF lands
	//    at d<=1, so the CA resolves this session on the inline fast path
	//    without it ever entering the scheduler queue.
	authenticate("alice (genuine PUF):", &rbc.PUFClient{ID: "alice", Device: aliceDev},
		rbc.ClientAuthRequest{})

	// 2. Alice again with extra injected noise (the paper's §5 security
	//    knob): still authenticates at a deeper Hamming distance. The
	//    client marks the session batch-class with a generous deadline,
	//    both riding in the v3 hello; they only take effect if the search
	//    escalates past the inline depth, which d=1 does not - the options
	//    are free on the fast path.
	authenticate("alice (+1 noise bit):", &rbc.PUFClient{ID: "alice", Device: aliceDev, NoiseBits: 1},
		rbc.ClientAuthRequest{Class: rbc.ClassBatch, Deadline: time.Now().Add(30 * time.Second)})

	// 3. Mallory answering alice's challenge with a different PUF: the
	//    exhaustive d=2 impostor search is exactly the d-large tail the
	//    serving path pushes out of the interactive lane, so the client
	//    self-declares background class. It escalates into the scheduler
	//    (d=2 > inline depth), exhausts the ball, and the CA refuses.
	malloryDev, err := rbc.NewPUFDevice(666, 1024, rbc.DefaultPUFProfile)
	if err != nil {
		log.Fatal(err)
	}
	authenticate("mallory (wrong PUF):", &rbc.PUFClient{ID: "alice", Device: malloryDev},
		rbc.ClientAuthRequest{Class: rbc.ClassBackground})

	// Both genuine sessions resolved inline at d<=1, so they never show
	// up in the scheduler's Submitted count - only the escalated
	// impostor search does.
	st := pool.Stats()
	fmt.Printf("\nscheduler: %d submitted, %d completed, %d rejected (inline sessions bypass it)\n",
		st.Submitted, st.Completed, st.Rejected)
	fmt.Printf("           avg queue wait %s, avg service %s (max %s)\n",
		st.AvgQueueWait(), st.AvgService(), st.ServiceMax)
	fmt.Printf("           by class: interactive=%d batch=%d background=%d\n",
		st.ByClass[rbc.ClassInteractive].Submitted,
		st.ByClass[rbc.ClassBatch].Submitted,
		st.ByClass[rbc.ClassBackground].Submitted)

	snap := reg.Snapshot()
	fmt.Printf("netproto:  %v conns, %v ok, %v denied\n",
		snap["netproto.conns_accepted"], snap["netproto.auth_ok"], snap["netproto.auth_denied"])

	// The trace ring is the flight recorder rbc-server serves at /trace.
	// Replay the impostor's search: its exhausted shells are all there.
	events := ring.Snapshot()
	last := events[len(events)-1].Search
	fmt.Println("\ntrace of the impostor search:")
	for _, ev := range events {
		if ev.Search != last {
			continue
		}
		fmt.Printf("  %-13s backend=%q detail=%q d=%d n=%d\n",
			ev.Kind, ev.Backend, ev.Detail, ev.Depth, ev.N)
	}
}
