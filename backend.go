package rbc

import (
	"fmt"
	"time"

	"rbcsalted/internal/apusim"
	"rbcsalted/internal/cluster"
	"rbcsalted/internal/core"
	"rbcsalted/internal/cpu"
	"rbcsalted/internal/gpusim"
	"rbcsalted/internal/plan"
)

// BackendKind selects which search engine NewBackend constructs.
type BackendKind int

const (
	// BackendCPU is the real multicore engine (SALTED-CPU).
	BackendCPU BackendKind = iota
	// BackendGPU is the calibrated A100 simulator (SALTED-GPU).
	BackendGPU
	// BackendAPU is the calibrated Gemini simulator (SALTED-APU).
	BackendAPU
	// BackendCluster is a fault-tolerant distributed coordinator; pair it
	// with ClusterWorker processes connecting over TCP.
	BackendCluster
	// BackendPlanner is the cost-based multiplexer over the CPU, GPU and
	// APU engines: every search is dispatched to the engine the
	// calibrated cost curves (corrected by live feedback) predict to be
	// cheapest under the planner's policy, deadline and joules budget.
	BackendPlanner
)

// String names the kind for logs and error messages.
func (k BackendKind) String() string {
	switch k {
	case BackendCPU:
		return "cpu"
	case BackendGPU:
		return "gpu"
	case BackendAPU:
		return "apu"
	case BackendCluster:
		return "cluster"
	case BackendPlanner:
		return "planner"
	default:
		return fmt.Sprintf("BackendKind(%d)", int(k))
	}
}

// ParseBackendKind parses "cpu", "gpu", "apu", "cluster" or "planner" —
// the values the command-line tools accept for their -backend flags.
func ParseBackendKind(s string) (BackendKind, error) {
	switch s {
	case "cpu":
		return BackendCPU, nil
	case "gpu":
		return BackendGPU, nil
	case "apu":
		return BackendAPU, nil
	case "cluster":
		return BackendCluster, nil
	case "planner":
		return BackendPlanner, nil
	default:
		return 0, fmt.Errorf("rbc: unknown backend kind %q (want cpu, gpu, apu, cluster or planner)", s)
	}
}

// BackendSpec describes the search engine NewBackend should build. The
// zero value (plus a Kind) is a sensible default for every kind; the
// With* functional options fill in the cross-cutting fields so call
// sites read declaratively:
//
//	b, err := rbc.NewBackend(rbc.BackendSpec{Kind: rbc.BackendGPU},
//		rbc.WithAlg(rbc.SHA3), rbc.WithDevices(3))
type BackendSpec struct {
	// Kind selects the engine.
	Kind BackendKind
	// Alg is the search hash; the zero value is SHA1.
	Alg HashAlg
	// Cores sets CPU search workers (CPU kind) or host execution
	// goroutines (GPU/APU kinds); 0 means GOMAXPROCS.
	Cores int
	// Devices is the simulated device count (GPU/APU kinds); 0 means 1.
	Devices int
	// CheckInterval is seeds hashed between exit-flag polls (GPU kind).
	CheckInterval int
	// ExecBudget caps the shell size executed for real rather than
	// planned analytically (GPU/APU kinds); 0 means the package default.
	ExecBudget uint64
	// Fallback enables the cluster's degraded mode: searches run on this
	// local backend whenever the fleet is empty (cluster kind).
	Fallback Backend
	// Metrics receives the cluster's fault-tolerance counters (cluster
	// kind) or the planner's dispatch counters (planner kind).
	Metrics *MetricsRegistry
	// JoulesBudget, when positive, caps the total energy the planner may
	// spend across all searches (planner kind); engines whose predicted
	// cost exceeds the remaining budget are deprioritized.
	JoulesBudget float64
	// PlanPolicy selects the planner's objective (planner kind); the
	// zero value is PlanBalanced.
	PlanPolicy PlanPolicy
	// HeartbeatInterval and HeartbeatTimeout tune the cluster's failure
	// detector (cluster kind); zero values take the cluster defaults.
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
}

// BackendOption mutates a BackendSpec; pass options to NewBackend after
// the spec.
type BackendOption func(*BackendSpec)

// WithAlg sets the search hash algorithm.
func WithAlg(alg HashAlg) BackendOption {
	return func(s *BackendSpec) { s.Alg = alg }
}

// WithCores sets CPU workers (CPU kind) or host execution goroutines
// (GPU/APU kinds).
func WithCores(n int) BackendOption {
	return func(s *BackendSpec) { s.Cores = n }
}

// WithDevices sets the simulated device count (GPU/APU kinds).
func WithDevices(n int) BackendOption {
	return func(s *BackendSpec) { s.Devices = n }
}

// WithCheckInterval sets seeds hashed between exit-flag polls (GPU
// kind).
func WithCheckInterval(n int) BackendOption {
	return func(s *BackendSpec) { s.CheckInterval = n }
}

// WithExecBudget caps the shell size executed for real in the
// simulators.
func WithExecBudget(n uint64) BackendOption {
	return func(s *BackendSpec) { s.ExecBudget = n }
}

// WithFallback enables the cluster's degraded mode on a local backend.
func WithFallback(b Backend) BackendOption {
	return func(s *BackendSpec) { s.Fallback = b }
}

// WithMetrics publishes the cluster's fault-tolerance counters.
func WithMetrics(r *MetricsRegistry) BackendOption {
	return func(s *BackendSpec) { s.Metrics = r }
}

// WithHeartbeat tunes the cluster's failure detector. A zero interval
// or timeout keeps the cluster default for that field.
func WithHeartbeat(interval, timeout time.Duration) BackendOption {
	return func(s *BackendSpec) {
		s.HeartbeatInterval = interval
		s.HeartbeatTimeout = timeout
	}
}

// WithJoulesBudget caps the planner's total energy spend in joules.
func WithJoulesBudget(j float64) BackendOption {
	return func(s *BackendSpec) { s.JoulesBudget = j }
}

// WithPlanPolicy selects the planner's dispatch objective.
func WithPlanPolicy(p PlanPolicy) BackendOption {
	return func(s *BackendSpec) { s.PlanPolicy = p }
}

// NewBackend is the single entry point for constructing any of the five
// search engines. It replaces the per-kind constructor zoo
// (CPUBackend literals, NewGPUBackend, NewAPUBackend, hand-built
// coordinators); those remain as thin deprecated wrappers.
//
// A cluster backend is returned as a *ClusterCoordinator ready for
// Serve; remember to Close it. All other kinds are ready immediately.
func NewBackend(spec BackendSpec, opts ...BackendOption) (Backend, error) {
	for _, opt := range opts {
		opt(&spec)
	}
	if spec.Cores < 0 {
		return nil, fmt.Errorf("rbc: negative cores %d", spec.Cores)
	}
	if spec.Devices < 0 {
		return nil, fmt.Errorf("rbc: negative devices %d", spec.Devices)
	}
	switch spec.Kind {
	case BackendCPU:
		return &cpu.Backend{Alg: spec.Alg, Workers: spec.Cores}, nil
	case BackendGPU:
		// Shared-memory iterator state is the paper's best GPU config
		// (§4.4) and is always on here; the deprecated NewGPUBackend
		// keeps the scalar-state mode reachable for ablations.
		return gpusim.NewBackend(gpusim.Config{
			Alg:               spec.Alg,
			Devices:           spec.Devices,
			CheckInterval:     spec.CheckInterval,
			ExecBudget:        spec.ExecBudget,
			HostWorkers:       spec.Cores,
			SharedMemoryState: true,
		}), nil
	case BackendAPU:
		return apusim.NewBackend(apusim.Config{
			Alg:         spec.Alg,
			Devices:     spec.Devices,
			ExecBudget:  spec.ExecBudget,
			HostWorkers: spec.Cores,
		}), nil
	case BackendPlanner:
		// The sims execute shells up to ExecBudget seeds for real and
		// cover the rest analytically; production traffic carries no
		// Oracle, so default the budget high enough for real execution
		// through d<=3 (u(3)-u(0) = 2,796,416 candidate seeds).
		execBudget := spec.ExecBudget
		if execBudget == 0 {
			execBudget = 4 << 20
		}
		return plan.New(plan.Config{
			Engines: []core.Backend{
				&cpu.Backend{Alg: spec.Alg, Workers: spec.Cores},
				gpusim.NewBackend(gpusim.Config{
					Alg:               spec.Alg,
					Devices:           spec.Devices,
					CheckInterval:     spec.CheckInterval,
					ExecBudget:        execBudget,
					HostWorkers:       spec.Cores,
					SharedMemoryState: true,
				}),
				apusim.NewBackend(apusim.Config{
					Alg:         spec.Alg,
					Devices:     spec.Devices,
					ExecBudget:  execBudget,
					HostWorkers: spec.Cores,
				}),
			},
			Policy:       plan.Policy(spec.PlanPolicy),
			JoulesBudget: spec.JoulesBudget,
			Metrics:      spec.Metrics,
		})
	case BackendCluster:
		return cluster.NewCoordinator(cluster.Config{
			Alg:               spec.Alg,
			Fallback:          spec.Fallback,
			HeartbeatInterval: spec.HeartbeatInterval,
			HeartbeatTimeout:  spec.HeartbeatTimeout,
			Metrics:           spec.Metrics,
		}), nil
	default:
		return nil, fmt.Errorf("rbc: unknown backend kind %v", spec.Kind)
	}
}
